/**
 * @file
 * The model zoo: exact layer shapes of the paper's seven DNN benchmarks
 * (VGG-16, ResNet-34, ResNet-50 on ImageNet; ViT-Small, ViT-Base; BERT-base
 * on MRPC and SST2) plus Llama-3-8B for the LLM study (§V-H).
 *
 * Shapes follow the torchvision / HuggingFace reference implementations the
 * paper obtained its pre-trained models from. Identical repeated blocks are
 * collapsed via LayerDesc::repeat so simulation cost stays laptop-scale
 * while aggregate statistics (weights, MACs) are exact.
 */
#ifndef BBS_MODELS_MODEL_ZOO_HPP
#define BBS_MODELS_MODEL_ZOO_HPP

#include "models/layer.hpp"

namespace bbs {

ModelDesc buildVgg16();
ModelDesc buildResNet34();
ModelDesc buildResNet50();
ModelDesc buildViTSmall();
ModelDesc buildViTBase();
ModelDesc buildBertMrpc();
ModelDesc buildBertSst2();
ModelDesc buildLlama3_8B();

/** The seven benchmarks of the paper's main evaluation, in figure order. */
std::vector<ModelDesc> benchmarkModels();

/** Look a model up by name; fatal on unknown name. */
ModelDesc modelByName(const std::string &name);

} // namespace bbs

#endif // BBS_MODELS_MODEL_ZOO_HPP
