#include "models/model_zoo.hpp"

#include "common/logging.hpp"

namespace bbs {

namespace {

/** Shorthand conv layer. */
LayerDesc
conv(std::string name, std::int64_t k, std::int64_t c, std::int64_t r,
     std::int64_t s, std::int64_t outHw, bool relu, int repeat = 1)
{
    LayerDesc l;
    l.name = std::move(name);
    l.kind = LayerKind::Conv;
    l.weightShape = Shape{k, c, r, s};
    l.outputPositions = outHw * outHw;
    l.reluActivations = relu;
    l.repeat = repeat;
    l.family = WeightFamily::Gaussian;
    return l;
}

/** Shorthand linear layer. */
LayerDesc
linear(std::string name, std::int64_t k, std::int64_t c,
       std::int64_t positions, bool relu, int repeat = 1,
       WeightFamily family = WeightFamily::Gaussian)
{
    LayerDesc l;
    l.name = std::move(name);
    l.kind = LayerKind::Linear;
    l.weightShape = Shape{k, c};
    l.outputPositions = positions;
    l.reluActivations = relu;
    l.repeat = repeat;
    l.family = family;
    return l;
}

/** Append one transformer encoder block (pre-norm ViT/BERT style). */
void
addTransformerBlock(std::vector<LayerDesc> &layers, const std::string &pfx,
                    std::int64_t dim, std::int64_t mlpDim,
                    std::int64_t tokens, int repeat, bool fusedQkv)
{
    if (fusedQkv) {
        layers.push_back(linear(pfx + ".qkv", 3 * dim, dim, tokens, false,
                                repeat, WeightFamily::Laplace));
    } else {
        layers.push_back(linear(pfx + ".q", dim, dim, tokens, false,
                                repeat, WeightFamily::Laplace));
        layers.push_back(linear(pfx + ".k", dim, dim, tokens, false,
                                repeat, WeightFamily::Laplace));
        layers.push_back(linear(pfx + ".v", dim, dim, tokens, false,
                                repeat, WeightFamily::Laplace));
    }
    layers.push_back(linear(pfx + ".proj", dim, dim, tokens, false, repeat,
                            WeightFamily::Laplace));
    layers.push_back(linear(pfx + ".mlp.fc1", mlpDim, dim, tokens, false,
                            repeat));
    layers.push_back(linear(pfx + ".mlp.fc2", dim, mlpDim, tokens, false,
                            repeat));
}

ModelDesc
buildBert(const std::string &task, double fp32Acc, double int8Acc)
{
    ModelDesc m;
    m.name = "Bert-" + task;
    m.dataset = task;
    m.fp32Accuracy = fp32Acc;
    m.int8Accuracy = int8Acc;
    // BERT-base: 12 encoder blocks, hidden 768, FFN 3072, sequence 128.
    // Separate Q/K/V projections (HuggingFace layout); embeddings and the
    // tiny task head are lookup/VP-bound and excluded from acceleration,
    // as in prior bit-serial evaluations.
    addTransformerBlock(m.layers, "encoder", 768, 3072, 128, 12, false);
    m.layers.push_back(linear("pooler", 768, 768, 1, false));
    return m;
}

} // namespace

ModelDesc
buildVgg16()
{
    ModelDesc m;
    m.name = "VGG-16";
    m.dataset = "ImageNet";
    m.fp32Accuracy = 73.36;
    m.int8Accuracy = 73.35;
    auto &L = m.layers;
    L.push_back(conv("conv1_1", 64, 3, 3, 3, 224, false));
    L.push_back(conv("conv1_2", 64, 64, 3, 3, 224, true));
    L.push_back(conv("conv2_1", 128, 64, 3, 3, 112, true));
    L.push_back(conv("conv2_2", 128, 128, 3, 3, 112, true));
    L.push_back(conv("conv3_1", 256, 128, 3, 3, 56, true));
    L.push_back(conv("conv3_x", 256, 256, 3, 3, 56, true, 2));
    L.push_back(conv("conv4_1", 512, 256, 3, 3, 28, true));
    L.push_back(conv("conv4_x", 512, 512, 3, 3, 28, true, 2));
    L.push_back(conv("conv5_x", 512, 512, 3, 3, 14, true, 3));
    L.push_back(linear("fc6", 4096, 25088, 1, true));
    L.push_back(linear("fc7", 4096, 4096, 1, true));
    L.push_back(linear("fc8", 1000, 4096, 1, true));
    return m;
}

ModelDesc
buildResNet34()
{
    ModelDesc m;
    m.name = "ResNet-34";
    m.dataset = "ImageNet";
    m.fp32Accuracy = 73.31;
    m.int8Accuracy = 73.39;
    auto &L = m.layers;
    L.push_back(conv("conv1", 64, 3, 7, 7, 112, false));
    // Basic blocks: two 3x3 convs each; stage-entry blocks also have a
    // 1x1 downsample projection.
    L.push_back(conv("layer1.x", 64, 64, 3, 3, 56, true, 6));
    L.push_back(conv("layer2.0.conv1", 128, 64, 3, 3, 28, true));
    L.push_back(conv("layer2.0.down", 128, 64, 1, 1, 28, true));
    L.push_back(conv("layer2.x", 128, 128, 3, 3, 28, true, 7));
    L.push_back(conv("layer3.0.conv1", 256, 128, 3, 3, 14, true));
    L.push_back(conv("layer3.0.down", 256, 128, 1, 1, 14, true));
    L.push_back(conv("layer3.x", 256, 256, 3, 3, 14, true, 11));
    L.push_back(conv("layer4.0.conv1", 512, 256, 3, 3, 7, true));
    L.push_back(conv("layer4.0.down", 512, 256, 1, 1, 7, true));
    L.push_back(conv("layer4.x", 512, 512, 3, 3, 7, true, 5));
    L.push_back(linear("fc", 1000, 512, 1, true));
    return m;
}

ModelDesc
buildResNet50()
{
    ModelDesc m;
    m.name = "ResNet-50";
    m.dataset = "ImageNet";
    m.fp32Accuracy = 76.13;
    m.int8Accuracy = 76.17;
    auto &L = m.layers;
    L.push_back(conv("conv1", 64, 3, 7, 7, 112, false));
    // Bottleneck blocks: 1x1 reduce, 3x3, 1x1 expand.
    L.push_back(conv("layer1.0.conv1", 64, 64, 1, 1, 56, true));
    L.push_back(conv("layer1.0.down", 256, 64, 1, 1, 56, true));
    L.push_back(conv("layer1.x.conv1", 64, 256, 1, 1, 56, true, 2));
    L.push_back(conv("layer1.conv2", 64, 64, 3, 3, 56, true, 3));
    L.push_back(conv("layer1.conv3", 256, 64, 1, 1, 56, true, 3));
    L.push_back(conv("layer2.0.conv1", 128, 256, 1, 1, 28, true));
    L.push_back(conv("layer2.0.down", 512, 256, 1, 1, 28, true));
    L.push_back(conv("layer2.x.conv1", 128, 512, 1, 1, 28, true, 3));
    L.push_back(conv("layer2.conv2", 128, 128, 3, 3, 28, true, 4));
    L.push_back(conv("layer2.conv3", 512, 128, 1, 1, 28, true, 4));
    L.push_back(conv("layer3.0.conv1", 256, 512, 1, 1, 14, true));
    L.push_back(conv("layer3.0.down", 1024, 512, 1, 1, 14, true));
    L.push_back(conv("layer3.x.conv1", 256, 1024, 1, 1, 14, true, 5));
    L.push_back(conv("layer3.conv2", 256, 256, 3, 3, 14, true, 6));
    L.push_back(conv("layer3.conv3", 1024, 256, 1, 1, 14, true, 6));
    L.push_back(conv("layer4.0.conv1", 512, 1024, 1, 1, 7, true));
    L.push_back(conv("layer4.0.down", 2048, 1024, 1, 1, 7, true));
    L.push_back(conv("layer4.x.conv1", 512, 2048, 1, 1, 7, true, 2));
    L.push_back(conv("layer4.conv2", 512, 512, 3, 3, 7, true, 3));
    L.push_back(conv("layer4.conv3", 2048, 512, 1, 1, 7, true, 3));
    L.push_back(linear("fc", 1000, 2048, 1, true));
    return m;
}

ModelDesc
buildViTSmall()
{
    ModelDesc m;
    m.name = "ViT-Small";
    m.dataset = "ImageNet";
    m.fp32Accuracy = 80.16;
    m.int8Accuracy = 80.05;
    m.layers.push_back(conv("patch_embed", 384, 3, 16, 16, 14, false));
    addTransformerBlock(m.layers, "blocks", 384, 1536, 197, 12, true);
    m.layers.push_back(linear("head", 1000, 384, 1, false));
    return m;
}

ModelDesc
buildViTBase()
{
    ModelDesc m;
    m.name = "ViT-Base";
    m.dataset = "ImageNet";
    m.fp32Accuracy = 84.54;
    m.int8Accuracy = 84.52;
    m.layers.push_back(conv("patch_embed", 768, 3, 16, 16, 14, false));
    addTransformerBlock(m.layers, "blocks", 768, 3072, 197, 12, true);
    m.layers.push_back(linear("head", 1000, 768, 1, false));
    return m;
}

ModelDesc
buildBertMrpc()
{
    return buildBert("MRPC", 90.7, 90.4);
}

ModelDesc
buildBertSst2()
{
    return buildBert("SST2", 91.8, 91.63);
}

ModelDesc
buildLlama3_8B()
{
    ModelDesc m;
    m.name = "Llama-3-8B";
    m.dataset = "WikiText/C4";
    auto &L = m.layers;
    // 32 decoder blocks, hidden 4096, FFN 14336, grouped-query attention
    // with 8 KV heads (KV projections to 1024). Sequence length 2048.
    const std::int64_t d = 4096, ffn = 14336, kv = 1024, seq = 2048;
    L.push_back(linear("q_proj", d, d, seq, false, 32,
                       WeightFamily::Laplace));
    L.push_back(linear("k_proj", kv, d, seq, false, 32,
                       WeightFamily::Laplace));
    L.push_back(linear("v_proj", kv, d, seq, false, 32,
                       WeightFamily::Laplace));
    L.push_back(linear("o_proj", d, d, seq, false, 32,
                       WeightFamily::Laplace));
    L.push_back(linear("gate_proj", ffn, d, seq, false, 32));
    L.push_back(linear("up_proj", ffn, d, seq, false, 32));
    L.push_back(linear("down_proj", d, ffn, seq, false, 32));
    return m;
}

std::vector<ModelDesc>
benchmarkModels()
{
    return {buildVgg16(),   buildResNet34(), buildResNet50(),
            buildViTSmall(), buildViTBase(),  buildBertMrpc(),
            buildBertSst2()};
}

ModelDesc
modelByName(const std::string &name)
{
    for (auto &m : benchmarkModels())
        if (m.name == name)
            return m;
    if (name == "Llama-3-8B")
        return buildLlama3_8B();
    BBS_FATAL("unknown model: ", name);
}

} // namespace bbs
