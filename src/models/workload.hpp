/**
 * @file
 * Workload materialization: turn a ModelDesc into quantized INT8 weight
 * tensors (the paper's baseline 8-bit models) via synthetic FP32 weights +
 * per-channel PTQ. Deterministic per (model, seed).
 */
#ifndef BBS_MODELS_WORKLOAD_HPP
#define BBS_MODELS_WORKLOAD_HPP

#include <cstdint>
#include <vector>

#include "core/global_pruning.hpp"
#include "models/layer.hpp"
#include "quant/quantizer.hpp"

namespace bbs {

/** One materialized layer: descriptor + INT8 codes + scales. */
struct MaterializedLayer
{
    LayerDesc desc;
    QuantizedTensor weights;
};

/** A fully materialized benchmark model. */
struct MaterializedModel
{
    ModelDesc desc;
    std::vector<MaterializedLayer> layers;

    /** Adapt to the global-pruning input format. */
    std::vector<PrunableLayer> toPrunableLayers() const;
};

/**
 * Options controlling materialization cost.
 */
struct MaterializeOptions
{
    std::uint64_t seed = 42;
    /**
     * Cap on weights generated per distinct layer; larger layers are
     * represented by their first maxWeightsPerLayer weights (whole
     * channels). Bit statistics are i.i.d. per group, so sampling whole
     * channels preserves every distribution this project measures.
     * 0 = no cap.
     */
    std::int64_t maxWeightsPerLayer = 0;
};

/** Materialize every distinct layer of @p model. */
MaterializedModel materializeModel(const ModelDesc &model,
                                   const MaterializeOptions &opts = {});

/**
 * He-style fan-in standard deviation for a layer, used as the synthetic
 * distribution's base scale.
 */
double layerBaseStddev(const LayerDesc &layer);

} // namespace bbs

#endif // BBS_MODELS_WORKLOAD_HPP
