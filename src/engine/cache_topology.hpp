/**
 * @file
 * Runtime cache-hierarchy detection backing the tuned GEMM blocking.
 *
 * The dense kernel's depth block used to be a compile-time constant
 * sized for a 32 KiB L1d; cacheTopology() detects the actual hierarchy
 * once per process — Linux sysfs first (works in containers and on every
 * architecture), x86 CPUID leaf 4 as the fallback, conservative defaults
 * (32 KiB L1d / 1 MiB L2 / 64 B lines) when neither answers — and
 * TuningParams::resolvedDepthBlockWords() derives the default block from
 * it. Detection never fails: `detected` records whether the numbers came
 * from the machine or the fallback.
 */
#ifndef BBS_ENGINE_CACHE_TOPOLOGY_HPP
#define BBS_ENGINE_CACHE_TOPOLOGY_HPP

#include <cstdint>
#include <string>

namespace bbs::engine {

struct CacheTopology
{
    std::int64_t l1dBytes = 32 * 1024;
    std::int64_t l2Bytes = 1024 * 1024;
    std::int64_t lineBytes = 64;
    /** True when the numbers were read from sysfs/CPUID rather than
     *  assumed. */
    bool detected = false;
    /** "sysfs", "cpuid", or "default". */
    const char *source = "default";
};

/** The process's cache topology, detected once (thread-safe). */
const CacheTopology &cacheTopology();

/**
 * The depth-block default for a given L1d size: the largest power of two
 * such that the four resident plane rows (4 x block x 8 B) fill at most
 * half the L1d, clamped to [128, 4096] words. 32 KiB -> 512 words, the
 * value the kernel previously hard-coded.
 */
std::int64_t defaultDepthBlockWords(std::int64_t l1dBytes);

/** One-line topology summary for banners/CLI. */
std::string cacheTopologySummary();

} // namespace bbs::engine

#endif // BBS_ENGINE_CACHE_TOPOLOGY_HPP
