/**
 * @file
 * Session — the engine facade's root object and the single source of
 * truth for runtime configuration.
 *
 * A Session owns an EngineConfig (worker-thread cap, SIMD dispatch
 * level, scratch-arena reservation) and exposes the whole compute
 * surface behind three verbs:
 *
 *   Session s;                                   // inherits process state
 *   auto w = s.pack(weights, {.targetColumns = 4});   // PackedOperand
 *   auto plan = s.plan(w, {.expectedBatch = 64});     // MatmulPlan
 *   Int32Tensor y = plan.run(activations);            // executes
 *
 * Every call made through a Session (dots, plan runs) sees that
 * Session's config scoped onto the runtime — replacing the scattered
 * BBS_THREADS/BBS_SIMD env reads and global setters as the way to steer
 * an individual workload. `defaultSession()` (inherit-everything config)
 * is what the legacy compatibility wrappers delegate to.
 *
 * Sessions are immutable after construction and safe to share across
 * threads. Two sessions with *different* explicit configs racing on
 * separate threads see each other's settings (the underlying knobs are
 * process-global) — give concurrent heterogeneous workloads their own
 * process, not just their own Session.
 */
#ifndef BBS_ENGINE_SESSION_HPP
#define BBS_ENGINE_SESSION_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/dot_kernels.hpp"
#include "engine/engine_config.hpp"
#include "engine/forwarding.hpp"
#include "engine/packed_operand.hpp"
#include "engine/plan.hpp"

namespace bbs::engine {

class TuningCache;

class Session
{
  public:
    /** Inherit-everything config: the process-wide thread cap and SIMD
     *  level, whatever they currently are (and the BBS_TUNE_CACHE
     *  tuning cache, when deployed). */
    Session();

    /**
     * Explicit config. Loads the tuning cache the config names (or
     * BBS_TUNE_CACHE when tuneCachePath is empty) here, once — plans
     * consult the loaded cache per run without any file IO. Loads are
     * memoized per path across Sessions; a missing or malformed cache
     * degrades to the hand heuristic with a one-time warning.
     */
    explicit Session(EngineConfig config);

    const EngineConfig &config() const { return config_; }

    /** The loaded tuning cache (nullptr = heuristic-only). */
    const std::shared_ptr<const TuningCache> &tuningCache() const
    {
        return tuneCache_;
    }

    /** Pack a dense INT8 matrix (activations, or uncompressed weights). */
    PackedOperand pack(const Int8Tensor &m) const;
    PackedOperand pack(std::span<const std::int8_t> values,
                       std::int64_t rows, std::int64_t cols) const;

    /** BBS-compress and pack a weight matrix at an operating point. */
    PackedOperand pack(const Int8Tensor &m, const PackOptions &opts) const;

    /** Wrap an existing whole-tensor compression. */
    PackedOperand pack(CompressedTensor ct) const;

    /**
     * Create an execution plan for @p weights. Resolves the dense repack
     * up front when the tiled kernel is in play, and pre-reserves the
     * calling thread's scratch arena from
     * max(hints.expectedBatch, config().scratchReserveRows).
     */
    MatmulPlan plan(PackedOperand weights, ShapeHints hints = {},
                    PlanOptions opts = {}) const;

    /**
     * The dot-product zoo behind one method: every executable form of
     * Eq. 1-3, selected by DotMethod. effectualOps / invertedColumns are
     * meaningful for the Bbs forms only (zero otherwise).
     */
    BbsDotResult dot(std::span<const std::int8_t> weights,
                     std::span<const std::int8_t> activations,
                     DotMethod method = DotMethod::Bbs) const;

    /**
     * Compressed-domain dot against one BBS group;
     * @p scalarReference selects the per-element pin form.
     */
    BbsDotResult dotCompressed(const CompressedGroup &cg,
                               std::span<const std::int8_t> activations,
                               bool scalarReference = false) const;

  private:
    EngineConfig config_;
    std::shared_ptr<const TuningCache> tuneCache_;
};

/**
 * The process-wide default Session (inherit-everything config) — the
 * one the legacy compatibility wrappers and the engine free functions
 * delegate to.
 */
Session &defaultSession();

/**
 * One-line summary of the engine runtime an example or service banner
 * prints: active/max SIMD level, worker-thread cap, and the alignment
 * guarantees the kernels rely on.
 */
std::string runtimeSummary();

} // namespace bbs::engine

#endif // BBS_ENGINE_SESSION_HPP
