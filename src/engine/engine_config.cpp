/**
 * @file
 * The library's only readers of BBS_THREADS and BBS_SIMD. parallel.hpp
 * and simd.cpp call the *FromEnv resolvers exactly once each (thread-safe
 * magic statics on their side); everything else goes through EngineConfig
 * values or the runtime setters.
 */
#include "engine/engine_config.hpp"

#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace bbs {

namespace detail {

// Consumed by common/parallel.hpp (declared there): the resolved startup
// worker cap, routed through the engine's single parse path.
unsigned
resolvedEnvThreadCap()
{
    return engine::EngineConfig::threadCapFromEnv();
}

} // namespace detail

namespace engine {

unsigned
EngineConfig::parseThreadCap(const char *env, unsigned hw)
{
    if (env == nullptr)
        return hw;
    char *end = nullptr;
    long cap = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && cap > 0 && cap < static_cast<long>(hw))
        return static_cast<unsigned>(cap);
    return hw;
}

int
EngineConfig::parseSimdLevel(const char *env)
{
    if (env == nullptr)
        return -1;
    std::string v(env);
    if (v == "scalar")
        return static_cast<int>(SimdLevel::Scalar);
    if (v == "avx2")
        return static_cast<int>(SimdLevel::Avx2);
    if (v == "avx512")
        return static_cast<int>(SimdLevel::Avx512);
    warn("BBS_SIMD=", v, " is not one of scalar|avx2|avx512; using the "
         "detected default");
    return -1;
}

namespace {

unsigned
hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace

unsigned
EngineConfig::threadCapFromEnv()
{
    return parseThreadCap(std::getenv("BBS_THREADS"), hardwareThreads());
}

SimdLevel
EngineConfig::simdLevelFromEnv()
{
    SimdLevel best = maxSupportedSimdLevel();
    int requested = parseSimdLevel(std::getenv("BBS_SIMD"));
    if (requested < 0)
        return best;
    auto level = static_cast<SimdLevel>(requested);
    if (!simdLevelSupported(level)) {
        warn("BBS_SIMD=", simdLevelName(level),
             " is not supported by this CPU; falling back to ",
             simdLevelName(best));
        return best;
    }
    return level;
}

ScopedEngineConfig::ScopedEngineConfig(const EngineConfig &cfg)
{
    if (cfg.threadCap != 0) {
        unsigned cur = bbs::detail::workerThreadCapOverride().load(
            std::memory_order_relaxed);
        if (cur != cfg.threadCap) {
            prevCap_ = cur;
            capChanged_ = true;
            setWorkerThreadCap(cfg.threadCap);
        }
    }
    if (cfg.simdLevel.has_value()) {
        SimdLevel cur = activeSimdLevel();
        if (cur != *cfg.simdLevel) {
            prevSimd_ = cur;
            simdChanged_ = true;
            setSimdLevel(*cfg.simdLevel);
        }
    }
}

ScopedEngineConfig::~ScopedEngineConfig()
{
    if (capChanged_)
        setWorkerThreadCap(prevCap_);
    if (simdChanged_)
        setSimdLevel(prevSimd_);
}

EngineConfig
EngineConfig::fromEnv()
{
    EngineConfig cfg;
    unsigned cap = threadCapFromEnv();
    cfg.threadCap = cap == hardwareThreads() ? 0u : cap; // -> inherit
    if (std::getenv("BBS_SIMD") != nullptr)
        cfg.simdLevel = simdLevelFromEnv();
    return cfg;
}

} // namespace engine
} // namespace bbs
