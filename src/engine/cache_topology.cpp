#include "engine/cache_topology.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "engine/tuning.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace bbs::engine {

namespace {

/** Read a small sysfs file into @p buf; false when unreadable. */
bool
readSysfsLine(const char *path, char *buf, std::size_t cap)
{
    std::FILE *f = std::fopen(path, "r");
    if (f == nullptr)
        return false;
    bool ok = std::fgets(buf, static_cast<int>(cap), f) != nullptr;
    std::fclose(f);
    return ok;
}

/** Parse a sysfs cache size ("32K", "1024K", "8M", plain bytes). */
std::int64_t
parseCacheSize(const char *s)
{
    char *end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (end == s || v <= 0)
        return 0;
    if (*end == 'K' || *end == 'k')
        return v * 1024;
    if (*end == 'M' || *end == 'm')
        return v * 1024 * 1024;
    return v;
}

/** cpu0's cache indices: level/type/size per index directory. */
bool
detectFromSysfs(CacheTopology &topo)
{
    bool sawL1d = false, sawL2 = false;
    for (int idx = 0; idx < 8; ++idx) {
        char path[128], buf[64];
        std::snprintf(path, sizeof path,
                      "/sys/devices/system/cpu/cpu0/cache/index%d/level",
                      idx);
        if (!readSysfsLine(path, buf, sizeof buf))
            break; // indices are dense; the first miss ends the scan
        int level = std::atoi(buf);

        std::snprintf(path, sizeof path,
                      "/sys/devices/system/cpu/cpu0/cache/index%d/type",
                      idx);
        if (!readSysfsLine(path, buf, sizeof buf))
            continue;
        bool data = std::strncmp(buf, "Data", 4) == 0 ||
                    std::strncmp(buf, "Unified", 7) == 0;
        if (!data)
            continue;

        std::snprintf(path, sizeof path,
                      "/sys/devices/system/cpu/cpu0/cache/index%d/size",
                      idx);
        if (!readSysfsLine(path, buf, sizeof buf))
            continue;
        std::int64_t bytes = parseCacheSize(buf);
        if (bytes <= 0)
            continue;
        if (level == 1 && !sawL1d) {
            topo.l1dBytes = bytes;
            sawL1d = true;
            std::snprintf(
                path, sizeof path,
                "/sys/devices/system/cpu/cpu0/cache/index%d/"
                "coherency_line_size",
                idx);
            if (readSysfsLine(path, buf, sizeof buf)) {
                std::int64_t line = std::atoll(buf);
                if (line >= 16 && line <= 1024)
                    topo.lineBytes = line;
            }
        } else if (level == 2 && !sawL2) {
            topo.l2Bytes = bytes;
            sawL2 = true;
        }
    }
    return sawL1d;
}

/** x86 CPUID leaf 4 (deterministic cache parameters). */
bool
detectFromCpuid(CacheTopology &topo)
{
#if defined(__x86_64__) || defined(__i386__)
    bool sawL1d = false;
    for (unsigned sub = 0; sub < 8; ++sub) {
        unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
        if (!__get_cpuid_count(4, sub, &eax, &ebx, &ecx, &edx))
            return false;
        unsigned type = eax & 0x1f; // 0 = no more caches
        if (type == 0)
            break;
        bool data = type == 1 || type == 3; // data or unified
        unsigned level = (eax >> 5) & 0x7;
        std::int64_t lineSize = (ebx & 0xfff) + 1;
        std::int64_t partitions = ((ebx >> 12) & 0x3ff) + 1;
        std::int64_t ways = ((ebx >> 22) & 0x3ff) + 1;
        std::int64_t sets = static_cast<std::int64_t>(ecx) + 1;
        std::int64_t bytes = lineSize * partitions * ways * sets;
        if (!data || bytes <= 0)
            continue;
        if (level == 1 && !sawL1d) {
            topo.l1dBytes = bytes;
            topo.lineBytes = lineSize;
            sawL1d = true;
        } else if (level == 2) {
            topo.l2Bytes = bytes;
        }
    }
    return sawL1d;
#else
    (void)topo;
    return false;
#endif
}

CacheTopology
detect()
{
    CacheTopology topo; // starts at the conservative defaults
    if (detectFromSysfs(topo)) {
        topo.detected = true;
        topo.source = "sysfs";
    } else if (detectFromCpuid(topo)) {
        topo.detected = true;
        topo.source = "cpuid";
    }
    return topo;
}

} // namespace

const CacheTopology &
cacheTopology()
{
    static const CacheTopology topo = detect();
    return topo;
}

std::int64_t
defaultDepthBlockWords(std::int64_t l1dBytes)
{
    // Four plane rows resident per block (2 activation + 2 weight), each
    // block x 8 B: block <= l1d / 2 / (4 * 8) = l1d / 64. Power of two so
    // blocks tile the padded row planes evenly.
    std::int64_t budget = l1dBytes / 64;
    std::int64_t block = 128;
    while (block * 2 <= budget && block < 4096)
        block *= 2;
    return block;
}

std::int64_t
TuningParams::resolvedDepthBlockWords() const
{
    if (depthBlockWords > 0)
        return depthBlockWords;
    return defaultDepthBlockWords(cacheTopology().l1dBytes);
}

std::string
cacheTopologySummary()
{
    const CacheTopology &t = cacheTopology();
    std::ostringstream os;
    os << "cache: L1d=" << t.l1dBytes / 1024 << "K L2="
       << t.l2Bytes / 1024 << "K line=" << t.lineBytes << "B ("
       << t.source << "), depth block=" << defaultDepthBlockWords(
              t.l1dBytes)
       << " words";
    return os.str();
}

} // namespace bbs::engine
