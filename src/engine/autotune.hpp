/**
 * @file
 * Measured plan autotuner + persistent tuning cache.
 *
 * For a (shape class, SIMD level, thread cap) key, the autotuner times
 * every executable plan kind — PerDot, TiledBitSerial (sweeping depth
 * blocks and register tiles), CompressedBatched — on representative
 * random operands and records the measured winner. Winners persist as a
 * JSON tuning cache (the bench `--json` record format plus a version
 * field); `Session` loads the cache at creation (BBS_TUNE_CACHE /
 * EngineConfig::tuneCachePath) and `MatmulPlan` consults it per run with
 * a nearest-shape-class lookup, falling back to the hand heuristic on a
 * miss — so a cold cache behaves exactly like the pre-autotuner engine,
 * and a corrupt cache degrades to it silently.
 *
 * Every candidate executes the same bit-exact arithmetic, so a tuned
 * decision can change only wall-clock time, never results (fuzz-pinned
 * by tests/test_autotune.cpp).
 */
#ifndef BBS_ENGINE_AUTOTUNE_HPP
#define BBS_ENGINE_AUTOTUNE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/plan.hpp"

namespace bbs::engine {

/** One measured winner: a shape-class key and its best execution. */
struct TuneEntry
{
    // ---- key
    std::string simd;     ///< SIMD level name at tuning time
    unsigned threads = 0; ///< worker cap at tuning time
    std::int64_t rows = 0;  ///< weight rows (output channels)
    std::int64_t depth = 0; ///< shared GEMM depth
    std::int64_t batch = 0; ///< activation rows
    double storedBits = 0.0; ///< operand mean stored bits

    // ---- measured winner
    PlanKind kind = PlanKind::Auto;
    std::int64_t depthBlockWords = 0; ///< 0 = topology default
    int tileRows = 2;
    int tileCols = 2;
    int rowTile = 2; ///< compressed-GEMM stage-2 rows per tile
    double seconds = 0.0; ///< winner's best-of-reps time
};

class TuningCache
{
  public:
    /** Cache-file format version; unknown versions fail load(). */
    static constexpr int kVersion = 1;

    std::vector<TuneEntry> entries;

    bool empty() const { return entries.empty(); }

    /** Whether any entry's measured winner is @p k (plan creation uses
     *  this to decide whether a tiled dense repack may be needed). */
    bool hasKind(PlanKind k) const;

    /**
     * Nearest-shape-class lookup: entries of the same SIMD level are
     * ranked by log-space shape distance (rows/depth/batch) plus a
     * stored-bits term and a thread-cap mismatch penalty; the closest
     * entry within the acceptance radius wins. nullptr = miss (callers
     * fall back to the heuristic).
     */
    const TuneEntry *lookup(std::int64_t rows, std::int64_t depth,
                            std::int64_t batch, double storedBits,
                            const char *simdName, unsigned threads) const;

    /** Write the cache as versioned JSON; false on IO failure. */
    bool save(const std::string &path) const;

    /**
     * Parse a cache file. Any defect — unreadable file, malformed JSON,
     * unknown version, bad record — returns false with @p out empty;
     * callers degrade to the heuristic, never error.
     */
    static bool load(const std::string &path, TuningCache &out);
};

/** Autotuning knobs. */
struct AutotuneOptions
{
    int reps = 3;   ///< timed repetitions per candidate (best-of)
    int warmup = 1; ///< untimed warmup runs per candidate
    /** BBS compression operating point of the synthetic weights. */
    std::int64_t groupSize = 32;
    int targetColumns = 3;
};

/** One shape class to tune. */
struct TuneShape
{
    std::int64_t rows = 0;
    std::int64_t depth = 0;
    std::int64_t batch = 0;
};

/**
 * Measure one shape class: times each executable kind (and the depth
 * block / register tile sweep for the tiled kernel) on random operands
 * and returns the winner, verified bit-identical across candidates.
 */
TuneEntry autotuneShape(const TuneShape &shape,
                        const AutotuneOptions &opts = {});

/**
 * The default suite: the bench/serving shape classes (rows x depth in
 * {64, 256} x {256, 512}, batches {1, 8, 64, 256}), tuned with
 * autotuneShape. This is what `bbs_cli autotune` runs.
 */
TuningCache autotuneSuite(const AutotuneOptions &opts = {});

/** Custom-suite form of autotuneSuite. */
TuningCache autotuneShapes(const std::vector<TuneShape> &shapes,
                           const AutotuneOptions &opts = {});

namespace detail {

/**
 * Memoized shared load keyed by path (Sessions under a deployed
 * BBS_TUNE_CACHE would otherwise re-read the file per construction).
 * nullptr when the file is absent or malformed — warned once per path.
 */
std::shared_ptr<const TuningCache>
loadTuningCacheShared(const std::string &path);

/** Resolve a config's cache path: "" -> BBS_TUNE_CACHE env (may still
 *  be empty), "none" -> disabled (""). */
std::string resolveTuneCachePath(const std::string &configured);

} // namespace detail

} // namespace bbs::engine

#endif // BBS_ENGINE_AUTOTUNE_HPP
