/**
 * @file
 * Session implementation, plus the engine free functions
 * (engine/forwarding.hpp) the compatibility wrappers delegate to — every
 * legacy entry point funnels through the plans defined here.
 */
#include "engine/session.hpp"

#include <sstream>

#include "common/aligned.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "engine/autotune.hpp"
#include "engine/scratch.hpp"
#include "gemm/bit_serial_matrix.hpp"

namespace bbs::engine {

Session::Session() : Session(EngineConfig{}) {}

Session::Session(EngineConfig config) : config_(std::move(config))
{
    std::string path =
        detail::resolveTuneCachePath(config_.tuneCachePath);
    if (!path.empty())
        tuneCache_ = detail::loadTuningCacheShared(path);
}

PackedOperand
Session::pack(const Int8Tensor &m) const
{
    ScopedEngineConfig scope(config_);
    return PackedOperand::packDense(m);
}

PackedOperand
Session::pack(std::span<const std::int8_t> values, std::int64_t rows,
              std::int64_t cols) const
{
    ScopedEngineConfig scope(config_);
    return PackedOperand::packDense(values, rows, cols);
}

PackedOperand
Session::pack(const Int8Tensor &m, const PackOptions &opts) const
{
    ScopedEngineConfig scope(config_);
    return PackedOperand::packCompressed(m, opts);
}

PackedOperand
Session::pack(CompressedTensor ct) const
{
    ScopedEngineConfig scope(config_);
    return PackedOperand::fromCompressedTensor(std::move(ct));
}

MatmulPlan
Session::plan(PackedOperand weights, ShapeHints hints,
              PlanOptions opts) const
{
    BBS_REQUIRE(!weights.empty(), "plan needs non-empty packed weights");
    MatmulPlan p;
    p.weights_ = std::move(weights);
    p.hints_ = hints;
    p.options_ = opts;
    p.config_ = config_;
    p.tuneCache_ = tuneCache_;
    // Hoisted once here: runs skip the ScopedEngineConfig entirely when
    // this config would change nothing.
    p.configInert_ =
        config_.threadCap == 0 && !config_.simdLevel.has_value();
    p.scratchReserveRows_ =
        std::max(hints.expectedBatch, config_.scratchReserveRows);

    // Resolve the dense repack up front when the tiled kernel is (or may
    // be, under Auto) the selected execution for compressed weights — a
    // loaded tuning cache holding tiled winners makes it reachable for
    // any compressed operand.
    if (p.weights_.compressed()) {
        bool tiled =
            opts.force == PlanKind::TiledBitSerial ||
            (opts.force == PlanKind::Auto &&
             (p.weights_.meanStoredBits() >=
                  config_.tuning.denseStoredBits - 1e-9 ||
              (tuneCache_ != nullptr &&
               tuneCache_->hasKind(PlanKind::TiledBitSerial))));
        if (tiled) {
            ScopedEngineConfig scope(config_);
            p.denseRepack_ = std::make_shared<const BitSerialMatrix>(
                BitSerialMatrix::pack(
                    p.weights_.compressedRows().decompress()));
        }
        // The window/sum arena serves only the compressed-batched
        // kernel; skip its reservation when that kind is unreachable
        // (tiled repack above without a cache that could still steer
        // back, or an explicit per-dot/tiled force).
        bool batchedReachable =
            opts.force == PlanKind::CompressedBatched ||
            (opts.force == PlanKind::Auto &&
             (p.denseRepack_ == nullptr || tuneCache_ != nullptr));
        if (batchedReachable && p.scratchReserveRows_ > 0) {
            // Reserve the planning thread's arena now; plan runs
            // re-reserve on their own (possibly different) executing
            // thread.
            ScratchArena::forThisThread().reserve(
                p.scratchReserveRows_,
                p.weights_.compressedRows().groupsPerRow());
        }
    }
    // Pre-size the planning thread's activation-pack slot: every kind
    // except per-dot packs raw activations into it per run.
    if (p.scratchReserveRows_ > 0 && opts.force != PlanKind::PerDot)
        ScratchArena::forThisThread().reservePack(p.scratchReserveRows_,
                                                  p.weights_.cols());
    return p;
}

BbsDotResult
Session::dot(std::span<const std::int8_t> weights,
             std::span<const std::int8_t> activations,
             DotMethod method) const
{
    ScopedEngineConfig scope(config_);
    switch (method) {
    case DotMethod::Reference:
        return {bbs::detail::dotReferenceKernel(weights, activations), 0,
                0};
    case DotMethod::ZeroSkip:
        return {bbs::detail::dotZeroSkipKernel(weights, activations), 0,
                0};
    case DotMethod::ZeroSkipScalar:
        return {bbs::detail::dotZeroSkipScalarKernel(weights, activations),
                0, 0};
    case DotMethod::Bbs:
        return bbs::detail::dotBbsKernel(weights, activations);
    case DotMethod::BbsScalar:
        return bbs::detail::dotBbsScalarKernel(weights, activations);
    }
    BBS_PANIC("unreachable dot method");
}

BbsDotResult
Session::dotCompressed(const CompressedGroup &cg,
                       std::span<const std::int8_t> activations,
                       bool scalarReference) const
{
    ScopedEngineConfig scope(config_);
    return scalarReference
               ? bbs::detail::dotCompressedScalarKernel(cg, activations)
               : bbs::detail::dotCompressedKernel(cg, activations);
}

Session &
defaultSession()
{
    static Session session;
    return session;
}

std::string
runtimeSummary()
{
    std::ostringstream os;
    os << "engine: simd=" << simdLevelName(activeSimdLevel()) << " (max "
       << simdLevelName(maxSupportedSimdLevel()) << "), threads="
       << maxWorkerThreads() << ", alignment=" << kCacheLineBytes
       << "B planes / " << kRowPlaneWordAlign << "-word rows";
    return os.str();
}

// ------------------------------------------------- facade free functions

BbsDotResult
dot(std::span<const std::int8_t> weights,
    std::span<const std::int8_t> activations, DotMethod method)
{
    return defaultSession().dot(weights, activations, method);
}

BbsDotResult
dotCompressed(const CompressedGroup &cg,
              std::span<const std::int8_t> activations,
              bool scalarReference)
{
    return defaultSession().dotCompressed(cg, activations,
                                          scalarReference);
}

Int32Tensor
matmulBitSerial(const BitSerialMatrix &activations,
                const BitSerialMatrix &weights)
{
    MatmulPlan plan = defaultSession().plan(
        PackedOperand::viewDense(weights), {},
        {PlanKind::TiledBitSerial});
    Int32Tensor out;
    plan.run(PackedOperand::viewDense(activations), out);
    return out;
}

Int32Tensor
matmulCompressed(const CompressedRowPlanes &weights,
                 const BitSerialMatrix &activations)
{
    Int32Tensor out;
    matmulCompressedInto(weights, activations, out);
    return out;
}

void
matmulCompressedInto(const CompressedRowPlanes &weights,
                     const BitSerialMatrix &activations, Int32Tensor &out)
{
    MatmulPlan plan = defaultSession().plan(
        PackedOperand::viewCompressed(weights), {},
        {PlanKind::CompressedBatched});
    plan.run(PackedOperand::viewDense(activations), out);
    return;
}

} // namespace bbs::engine
