/**
 * @file
 * The bbs engine — the library's unified compute API.
 *
 * One facade over the bit-serial compute zoo that grew across the first
 * four PRs (four dot forms plus scalar twins, two GEMM engines, three
 * forward variants, and three packing types, each with its own ad-hoc
 * config channel):
 *
 *  - **Session** (engine/session.hpp): owns an EngineConfig — thread
 *    cap, SIMD level, scratch-arena reservation — and is the single
 *    source of truth replacing scattered env reads and global setters.
 *  - **PackedOperand** (engine/packed_operand.hpp): one value type for a
 *    packed INT8 matrix, produced by `Session::pack()`, which chooses
 *    the representation (dense bit planes vs BBS-compressed row planes)
 *    and round-trips through bytes bit-exactly.
 *  - **MatmulPlan** (engine/plan.hpp): created once via
 *    `Session::plan(weights, hints)`, executed with `plan.run(acts)`;
 *    picks per-dot vs tiled bit-serial vs compressed-batched execution
 *    from batch size, shape and sparsity — or from the autotuner's
 *    measured winners when a tuning cache is loaded — with an
 *    explicit-override escape hatch.
 *  - **Autotuner** (engine/autotune.hpp): measures the kinds and the
 *    kernel parameters (cache-topology depth blocking, register tiles)
 *    per shape class and persists winners as a JSON tuning cache
 *    Sessions load at creation (BBS_TUNE_CACHE).
 *
 * Backends (sharding, caching, new accelerators) mount behind plans;
 * callers target this header. The pre-engine free functions (dot*,
 * gemm*, Int8Network::forward* variants) remain as compatibility
 * wrappers delegating to the default Session — see common/compat.hpp.
 */
#ifndef BBS_ENGINE_ENGINE_HPP
#define BBS_ENGINE_ENGINE_HPP

#include "engine/autotune.hpp"
#include "engine/cache_topology.hpp"
#include "engine/engine_config.hpp"
#include "engine/packed_operand.hpp"
#include "engine/plan.hpp"
#include "engine/scratch.hpp"
#include "engine/session.hpp"

#endif // BBS_ENGINE_ENGINE_HPP
