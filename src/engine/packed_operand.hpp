/**
 * @file
 * PackedOperand — one value type for "an INT8 matrix packed for the
 * bit-serial engine", subsuming the packing-type zoo behind
 * `Session::pack()`.
 *
 * Internally an operand is one of:
 *  - **DenseBitPlanes**: a BitSerialMatrix (whole matrix packed into
 *    [bit][row][col-word] uint64 planes) — activations, or weights for
 *    the dense tiled kernel;
 *  - **CompressedRows**: CompressedRowPlanes (BBS-compressed weight rows:
 *    surviving-column planes + pruned-column shift + BBS constant per
 *    group), optionally backed by the CompressedTensor it was prepared
 *    from (which carries the serialization metadata).
 *
 * Operands are cheap to copy (shared immutable payloads) and safe to
 * share across threads. `serialize()`/`deserialize()` round-trip an
 * operand through bytes bit-exactly: a plan run on the reloaded operand
 * produces identical outputs (tests/test_engine.cpp pins this).
 */
#ifndef BBS_ENGINE_PACKED_OPERAND_HPP
#define BBS_ENGINE_PACKED_OPERAND_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/compressed_tensor.hpp"
#include "gemm/bit_serial_matrix.hpp"
#include "gemm/compressed_gemm.hpp"

namespace bbs::engine {

/** Internal representation a PackedOperand chose. */
enum class PackKind
{
    DenseBitPlanes = 0,
    CompressedRows = 1,
};

/** "dense-bit-planes" / "compressed-rows". */
const char *packKindName(PackKind k);

/** BBS compression operating point for Session::pack(). */
struct PackOptions
{
    std::int64_t groupSize = 32;
    int targetColumns = 0;
    PruneStrategy strategy = PruneStrategy::ZeroPointShifting;
};

class PackedOperand
{
  public:
    PackedOperand() = default;

    /** Pack a dense matrix into bit planes. */
    static PackedOperand packDense(const Int8Tensor &m);
    static PackedOperand packDense(std::span<const std::int8_t> values,
                                   std::int64_t rows, std::int64_t cols);

    /** BBS-compress then prepare row planes (weights path). */
    static PackedOperand packCompressed(const Int8Tensor &m,
                                        const PackOptions &opts);

    /** Wrap an existing whole-tensor compression. */
    static PackedOperand fromCompressedTensor(CompressedTensor ct);

    /** Prepare from flat row-major groups with row offsets (the layout
     *  Int8LinearLayer stores). */
    static PackedOperand
    fromRowGroups(std::span<const CompressedGroup> groups,
                  std::span<const std::int64_t> rowOffsets,
                  std::int64_t cols, std::int64_t groupSize);

    /** Share an already-prepared row-plane packing (no copy). */
    static PackedOperand
    fromPrepared(std::shared_ptr<const CompressedRowPlanes> planes);

    /**
     * Non-owning views over caller-kept packings — the compatibility
     * wrappers' bridge. The caller must keep the viewed object alive for
     * the operand's lifetime.
     */
    static PackedOperand viewDense(const BitSerialMatrix &m);
    static PackedOperand viewCompressed(const CompressedRowPlanes &p);

    /**
     * Mapped-view operands (the mmap model store): the payload is a
     * view packing whose plane pointers live in an mmap'd container,
     * and the shared_ptr's ownership (typically an aliasing shared_ptr
     * into the MappedContainer) keeps the mapping alive for as long as
     * any operand or plan built over it exists. `mappedCompressed`
     * takes the precomputed stored-bit mean (the container's
     * OperandMeta) so creating the operand never scans — and therefore
     * never page-faults — the group payload. Plan runs are
     * bit-identical to the owned path (tests/test_store.cpp pins it).
     */
    static PackedOperand
    mappedDense(std::shared_ptr<const BitSerialMatrix> view);
    static PackedOperand
    mappedCompressed(std::shared_ptr<const CompressedRowPlanes> view,
                     double meanStoredBits);

    /** True for mapped*-built operands (payload lives in a mapping). */
    bool mapped() const { return mapped_; }

    bool empty() const { return rows() == 0 || cols() == 0; }
    PackKind kind() const { return kind_; }
    bool compressed() const { return kind_ == PackKind::CompressedRows; }
    std::int64_t rows() const;
    std::int64_t cols() const;

    /**
     * Mean stored bit columns per weight (8.0 = compression removed
     * nothing; 0.0 = every group fully pruned). Dense operands report
     * 8.0. The sparsity signal MatmulPlan::selectKind() reads.
     */
    double meanStoredBits() const { return meanStoredBits_; }

    /** The dense packing; requires kind() == DenseBitPlanes. */
    const BitSerialMatrix &dense() const;

    /** The compressed row planes; requires kind() == CompressedRows. */
    const CompressedRowPlanes &compressedRows() const;

    /** Reconstruct the INT8 matrix (exact for either representation). */
    Int8Tensor unpack() const;

    /**
     * Self-describing byte image. Dense operands store raw INT8 values;
     * compressed operands store the BitVert DRAM layout
     * (core/serialization.hpp) plus the descriptor fields that layout
     * keeps external. Requires a compressed operand to be backed by its
     * CompressedTensor (pack/packCompressed/fromCompressedTensor paths).
     */
    std::vector<std::uint8_t> serialize() const;

    /** Inverse of serialize(); repacks, so plan runs are bit-identical.
     *  A malformed blob is fatal (deployment error). */
    static PackedOperand deserialize(std::span<const std::uint8_t> bytes);

    /**
     * Non-fatal deserialize(): the same validation chain, but a
     * malformed blob returns false (with a diagnostic in @p error when
     * non-null) instead of terminating the process. For callers where a
     * bad blob is an expected runtime condition — a server rejecting a
     * corrupt model upload, fault-injection harnesses.
     */
    static bool tryDeserialize(std::span<const std::uint8_t> bytes,
                               PackedOperand &out,
                               std::string *error = nullptr);

  private:
    PackKind kind_ = PackKind::DenseBitPlanes;
    bool mapped_ = false;
    double meanStoredBits_ = 8.0;
    std::shared_ptr<const BitSerialMatrix> dense_;
    std::shared_ptr<const CompressedRowPlanes> rows_;
    /** Set when the operand was built from a whole-tensor compression
     *  (serialization + unpack metadata). */
    std::shared_ptr<const CompressedTensor> tensor_;
};

} // namespace bbs::engine

#endif // BBS_ENGINE_PACKED_OPERAND_HPP
