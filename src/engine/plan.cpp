#include "engine/plan.hpp"

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "core/dot_kernels.hpp"
#include "engine/scratch.hpp"
#include "gemm/gemm.hpp"

namespace bbs::engine {

namespace {

/**
 * The per-dot execution: the exact loop nest Int8Network::forwardPerDot
 * ran (weight channels outer and parallel, samples inner, groups in
 * ascending order), so plans resolve it bit-identically.
 */
void
runPerDot(const CompressedRowPlanes &w, const Int8Tensor &x,
          Int32Tensor &out)
{
    std::int64_t n = x.shape().dim(0);
    std::int64_t k = w.rows();
    std::int64_t numGroups = w.groupsPerRow();
    parallelFor(k, [&](std::int64_t o) {
        for (std::int64_t r = 0; r < n; ++r) {
            std::int64_t acc = 0;
            for (std::int64_t g = 0; g < numGroups; ++g) {
                std::span<const std::int8_t> acts(
                    &x.at(r, w.groupBegin(g)),
                    static_cast<std::size_t>(w.groupMembers(g)));
                acc += detail::dotCompressedPacked(w.packedGroup(o, g),
                                                  w.shift(o, g),
                                                  w.constant(o, g), acts)
                           .value;
            }
            out.at(r, o) = static_cast<std::int32_t>(acc);
        }
    }, 2);
}

} // namespace

const char *
planKindName(PlanKind k)
{
    switch (k) {
    case PlanKind::Auto: return "auto";
    case PlanKind::PerDot: return "per-dot";
    case PlanKind::TiledBitSerial: return "tiled-bit-serial";
    case PlanKind::CompressedBatched: return "compressed-batched";
    }
    return "?";
}

PlanKind
MatmulPlan::selectKind(std::int64_t weightRows, std::int64_t depth,
                       std::int64_t batch, bool compressedWeights,
                       double meanStoredBits)
{
    // The shape completes the contract for future cost models; today the
    // decision keys on batch size and stored-bit sparsity alone.
    (void)weightRows;
    (void)depth;
    if (!compressedWeights)
        return PlanKind::TiledBitSerial;
    if (batch <= 1)
        return PlanKind::PerDot;
    if (meanStoredBits >= 8.0 - 1e-9)
        return PlanKind::TiledBitSerial;
    return PlanKind::CompressedBatched;
}

PlanKind
MatmulPlan::kindForBatch(std::int64_t batch) const
{
    if (options_.force != PlanKind::Auto)
        return options_.force;
    return selectKind(weights_.rows(), weights_.cols(), batch,
                      weights_.compressed(), weights_.meanStoredBits());
}

void
MatmulPlan::execute(PlanKind kind, const Int8Tensor *raw,
                    const BitSerialMatrix *packed, Int32Tensor &out) const
{
    BBS_REQUIRE(valid(), "running an empty MatmulPlan");
    std::int64_t depth = weights_.cols();
    std::int64_t n = raw != nullptr ? raw->shape().dim(0) : packed->rows();
    std::int64_t actCols =
        raw != nullptr ? raw->shape().dim(1) : packed->cols();
    BBS_REQUIRE(actCols == depth, "plan depth mismatch: activations ",
                actCols, " vs weights ", depth);
    BBS_REQUIRE(depth <= kMaxGemmDepth, "plan depth ", depth,
                " can overflow the INT32 outputs (max ", kMaxGemmDepth,
                ")");
    BBS_REQUIRE(kind != PlanKind::Auto, "execute() needs a resolved kind");

    ScopedEngineConfig scope(config_);
    bbs::detail::ensureOutputShape(out, n, weights_.rows());

    switch (kind) {
    case PlanKind::PerDot: {
        BBS_REQUIRE(weights_.compressed(),
                    "per-dot execution needs compressed weights");
        BBS_REQUIRE(raw != nullptr, "per-dot execution needs unpacked "
                    "activations (element access)");
        runPerDot(weights_.compressedRows(), *raw, out);
        return;
    }
    case PlanKind::TiledBitSerial: {
        const BitSerialMatrix *w = nullptr;
        BitSerialMatrix local;
        if (!weights_.compressed()) {
            w = &weights_.dense();
        } else if (denseRepack_ != nullptr) {
            w = denseRepack_.get();
        } else {
            // Escape-hatch path: densify on the spot (plans whose
            // creation-time kind could select the tiled kernel cache
            // this repack up front).
            local = BitSerialMatrix::pack(
                weights_.compressedRows().decompress());
            w = &local;
        }
        if (packed != nullptr) {
            bbs::detail::gemmBitSerialKernel(*packed, *w, out);
        } else {
            BitSerialMatrix acts = BitSerialMatrix::pack(*raw);
            bbs::detail::gemmBitSerialKernel(acts, *w, out);
        }
        return;
    }
    case PlanKind::CompressedBatched: {
        BBS_REQUIRE(weights_.compressed(),
                    "compressed-batched execution needs compressed "
                    "weights");
        // Reserve the *executing* thread's arena up to the plan's
        // expected batch, so a worker's first (possibly small) batch
        // already sizes the scratch for the largest one to come.
        ScratchArena &arena = ScratchArena::forThisThread();
        if (scratchReserveRows_ > n)
            arena.reserve(scratchReserveRows_,
                          weights_.compressedRows().groupsPerRow());
        if (packed != nullptr) {
            bbs::detail::gemmCompressedKernel(weights_.compressedRows(),
                                              *packed, out, arena);
        } else {
            BitSerialMatrix acts = BitSerialMatrix::pack(*raw);
            bbs::detail::gemmCompressedKernel(weights_.compressedRows(),
                                              acts, out, arena);
        }
        return;
    }
    case PlanKind::Auto:
        break;
    }
    BBS_PANIC("unreachable plan kind");
}

void
MatmulPlan::run(const Int8Tensor &activations, Int32Tensor &out) const
{
    execute(kindForBatch(activations.shape().dim(0)), &activations,
            nullptr, out);
}

Int32Tensor
MatmulPlan::run(const Int8Tensor &activations) const
{
    Int32Tensor out;
    run(activations, out);
    return out;
}

void
MatmulPlan::run(const PackedOperand &activations, Int32Tensor &out) const
{
    BBS_REQUIRE(!activations.compressed(),
                "activations must be a dense bit-plane operand");
    const BitSerialMatrix &acts = activations.dense();
    PlanKind kind = kindForBatch(acts.rows());
    // Auto's per-dot pick needs element access; for an already-packed
    // batch the compressed-batched kernel serves it bit-identically (an
    // *explicit* PerDot force still rejects packed activations below).
    if (options_.force == PlanKind::Auto && kind == PlanKind::PerDot)
        kind = PlanKind::CompressedBatched;
    execute(kind, nullptr, &acts, out);
}

void
MatmulPlan::runAs(PlanKind kind, const Int8Tensor &activations,
                  Int32Tensor &out) const
{
    BBS_REQUIRE(kind != PlanKind::Auto,
                "runAs() needs an explicit kind; use run() for Auto");
    execute(kind, &activations, nullptr, out);
}

} // namespace bbs::engine
