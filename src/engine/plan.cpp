#include "engine/plan.hpp"

#include <chrono>
#include <optional>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "core/dot_kernels.hpp"
#include "engine/autotune.hpp"
#include "engine/scratch.hpp"
#include "gemm/gemm.hpp"

namespace bbs::engine {

namespace {

#if BBS_OBS
// Engine-layer instrumentation (compiled out at BBS_OBS=0): plan-kind
// run tallies and per-kind execute latency in the process-global
// registry, plus tune-cache outcome counters. Metric refs are magic
// statics — registration (the only allocating step) happens once, and
// every run after that is a relaxed RMW, preserving the serving drain
// path's zero-allocation invariant.
obs::Counter &
planRunCounter(PlanKind k)
{
    auto &reg = obs::Registry::global();
    static obs::Counter &perDot =
        reg.counter("bbs_engine_plan_runs_total", "Plan executions by kind",
                    "kind=\"per-dot\"");
    static obs::Counter &tiled =
        reg.counter("bbs_engine_plan_runs_total", "Plan executions by kind",
                    "kind=\"tiled-bit-serial\"");
    static obs::Counter &compressed =
        reg.counter("bbs_engine_plan_runs_total", "Plan executions by kind",
                    "kind=\"compressed-batched\"");
    switch (k) {
    case PlanKind::PerDot: return perDot;
    case PlanKind::TiledBitSerial: return tiled;
    default: return compressed;
    }
}

obs::Histogram &
planLatency(PlanKind k)
{
    auto &reg = obs::Registry::global();
    static obs::Histogram &perDot = reg.histogram(
        "bbs_engine_plan_latency_us", obs::Histogram::latencyBoundsUs(),
        "Plan execute() wall time by kind, microseconds",
        "kind=\"per-dot\"");
    static obs::Histogram &tiled = reg.histogram(
        "bbs_engine_plan_latency_us", obs::Histogram::latencyBoundsUs(),
        "Plan execute() wall time by kind, microseconds",
        "kind=\"tiled-bit-serial\"");
    static obs::Histogram &compressed = reg.histogram(
        "bbs_engine_plan_latency_us", obs::Histogram::latencyBoundsUs(),
        "Plan execute() wall time by kind, microseconds",
        "kind=\"compressed-batched\"");
    switch (k) {
    case PlanKind::PerDot: return perDot;
    case PlanKind::TiledBitSerial: return tiled;
    default: return compressed;
    }
}

obs::Counter &
tuneOutcome(int which) // 0 = hit, 1 = miss, 2 = fallback
{
    auto &reg = obs::Registry::global();
    static obs::Counter &hit = reg.counter(
        "bbs_engine_tune_lookups_total",
        "Tuning-cache lookups by outcome", "outcome=\"hit\"");
    static obs::Counter &miss = reg.counter(
        "bbs_engine_tune_lookups_total",
        "Tuning-cache lookups by outcome", "outcome=\"miss\"");
    static obs::Counter &fallback = reg.counter(
        "bbs_engine_tune_lookups_total",
        "Tuning-cache lookups by outcome", "outcome=\"fallback\"");
    return which == 0 ? hit : which == 1 ? miss : fallback;
}

/** Times one execute() and books it under the resolved kind. */
struct RunTimer
{
    PlanKind kind;
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();

    ~RunTimer()
    {
        planRunCounter(kind).inc();
        planLatency(kind).observe(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
};
#endif // BBS_OBS

/**
 * The per-dot execution: the exact loop nest Int8Network::forwardPerDot
 * ran (weight channels outer and parallel, samples inner, groups in
 * ascending order), so plans resolve it bit-identically.
 */
void
runPerDot(const CompressedRowPlanes &w, const Int8Tensor &x,
          Int32Tensor &out)
{
    std::int64_t n = x.shape().dim(0);
    std::int64_t k = w.rows();
    std::int64_t numGroups = w.groupsPerRow();
    parallelFor(k, [&](std::int64_t o) {
        for (std::int64_t r = 0; r < n; ++r) {
            std::int64_t acc = 0;
            for (std::int64_t g = 0; g < numGroups; ++g) {
                std::span<const std::int8_t> acts(
                    &x.at(r, w.groupBegin(g)),
                    static_cast<std::size_t>(w.groupMembers(g)));
                acc += bbs::detail::dotCompressedPacked(w.packedGroup(o, g),
                                                  w.shift(o, g),
                                                  w.constant(o, g), acts)
                           .value;
            }
            out.at(r, o) = static_cast<std::int32_t>(acc);
        }
    }, 2);
}

} // namespace

const char *
planKindName(PlanKind k)
{
    switch (k) {
    case PlanKind::Auto: return "auto";
    case PlanKind::PerDot: return "per-dot";
    case PlanKind::TiledBitSerial: return "tiled-bit-serial";
    case PlanKind::CompressedBatched: return "compressed-batched";
    }
    return "?";
}

PlanKind
MatmulPlan::selectKind(std::int64_t weightRows, std::int64_t depth,
                       std::int64_t batch, bool compressedWeights,
                       double meanStoredBits, const TuningParams &tuning)
{
    if (!compressedWeights)
        return PlanKind::TiledBitSerial;
    if (batch <= tuning.perDotMaxBatch)
        return PlanKind::PerDot;
    // Tiny matrices: the batched kernels stage activation windows (and
    // the tiled kernel packs the whole batch) before any arithmetic —
    // with almost no weight rows or depth to amortize that over, the
    // plain dot loop wins past batch 1 too.
    if (batch <= tuning.tinyBatchMax &&
        (weightRows <= tuning.tinyRows || depth <= tuning.tinyDepth))
        return PlanKind::PerDot;
    if (meanStoredBits >= tuning.denseStoredBits - 1e-9)
        return PlanKind::TiledBitSerial;
    return PlanKind::CompressedBatched;
}

PlanKind
MatmulPlan::selectKind(std::int64_t weightRows, std::int64_t depth,
                       std::int64_t batch, bool compressedWeights,
                       double meanStoredBits)
{
    return selectKind(weightRows, depth, batch, compressedWeights,
                      meanStoredBits, TuningParams{});
}

MatmulPlan::Resolved
MatmulPlan::resolveForBatch(std::int64_t batch, bool countTune) const
{
#if !BBS_OBS
    (void)countTune;
#endif
    Resolved r{options_.force, config_.tuning};
    if (r.kind != PlanKind::Auto)
        return r;
    if (tuneCache_ != nullptr) {
        SimdLevel simd = config_.simdLevel.value_or(activeSimdLevel());
        unsigned threads = config_.threadCap != 0 ? config_.threadCap
                                                  : maxWorkerThreads();
        const TuneEntry *e = tuneCache_->lookup(
            weights_.rows(), weights_.cols(), batch,
            weights_.meanStoredBits(), simdLevelName(simd), threads);
        // A cached winner applies only when it is executable here:
        // the compressed kinds need compressed weights, and tiled over
        // compressed weights needs the creation-time dense repack (the
        // per-run densify escape hatch would cost more than any kernel
        // choice saves).
        bool executable =
            e != nullptr &&
            (e->kind == PlanKind::TiledBitSerial
                 ? (!weights_.compressed() || denseRepack_ != nullptr)
                 : weights_.compressed() && e->kind != PlanKind::Auto);
#if BBS_OBS
        if (countTune)
            tuneOutcome(e == nullptr ? 1 : executable ? 0 : 2).inc();
#endif
        if (executable) {
            r.kind = e->kind;
            if (e->kind == PlanKind::TiledBitSerial) {
                if (e->depthBlockWords > 0)
                    r.tuning.depthBlockWords = e->depthBlockWords;
                r.tuning.tileRows = e->tileRows;
                r.tuning.tileCols = e->tileCols;
            } else if (e->kind == PlanKind::CompressedBatched &&
                       e->rowTile > 0) {
                r.tuning.compressedRowTile = e->rowTile;
            }
            return r;
        }
    }
    r.kind = selectKind(weights_.rows(), weights_.cols(), batch,
                        weights_.compressed(), weights_.meanStoredBits(),
                        config_.tuning);
    return r;
}

PlanKind
MatmulPlan::kindForBatch(std::int64_t batch) const
{
    // Introspection, not execution: keep it out of the tune metrics.
    return resolveForBatch(batch, false).kind;
}

void
MatmulPlan::execute(PlanKind kind, const TuningParams &tuning,
                    const Int8Tensor *raw, const BitSerialMatrix *packed,
                    Int32Tensor &out) const
{
    BBS_REQUIRE(valid(), "running an empty MatmulPlan");
    std::int64_t depth = weights_.cols();
    std::int64_t n = raw != nullptr ? raw->shape().dim(0) : packed->rows();
    std::int64_t actCols =
        raw != nullptr ? raw->shape().dim(1) : packed->cols();
    BBS_REQUIRE(actCols == depth, "plan depth mismatch: activations ",
                actCols, " vs weights ", depth);
    BBS_REQUIRE(depth <= kMaxGemmDepth, "plan depth ", depth,
                " can overflow the INT32 outputs (max ", kMaxGemmDepth,
                ")");
    BBS_REQUIRE(kind != PlanKind::Auto, "execute() needs a resolved kind");

    // Hoisted config application: inert configs (the common case — the
    // default Session and every plan without an explicit thread/SIMD
    // override) skip the scope object entirely, decided once at plan
    // creation instead of per run.
    std::optional<ScopedEngineConfig> scope;
    if (!configInert_)
        scope.emplace(config_);
    bbs::detail::ensureOutputShape(out, n, weights_.rows());

#if BBS_OBS
    RunTimer runTimer{kind};
#endif

    switch (kind) {
    case PlanKind::PerDot: {
        BBS_REQUIRE(weights_.compressed(),
                    "per-dot execution needs compressed weights");
        BBS_REQUIRE(raw != nullptr, "per-dot execution needs unpacked "
                    "activations (element access)");
        runPerDot(weights_.compressedRows(), *raw, out);
        return;
    }
    case PlanKind::TiledBitSerial: {
        const BitSerialMatrix *w = nullptr;
        BitSerialMatrix local;
        if (!weights_.compressed()) {
            w = &weights_.dense();
        } else if (denseRepack_ != nullptr) {
            w = denseRepack_.get();
        } else {
            // Escape-hatch path: densify on the spot (plans whose
            // creation-time kind could select the tiled kernel cache
            // this repack up front).
            local = BitSerialMatrix::pack(
                weights_.compressedRows().decompress());
            w = &local;
        }
        if (packed != nullptr) {
            bbs::detail::gemmBitSerialKernel(*packed, *w, out, tuning);
        } else {
            // Pack into the executing thread's arena slot instead of a
            // local: repacking reuses its capacity, so steady-state runs
            // allocate nothing.
            ScratchArena &arena = ScratchArena::forThisThread();
            if (scratchReserveRows_ > n)
                arena.reservePack(scratchReserveRows_, depth);
            BitSerialMatrix::packInto(*raw, arena.actsPack);
            bbs::detail::gemmBitSerialKernel(arena.actsPack, *w, out,
                                             tuning);
        }
        return;
    }
    case PlanKind::CompressedBatched: {
        BBS_REQUIRE(weights_.compressed(),
                    "compressed-batched execution needs compressed "
                    "weights");
        // Reserve the *executing* thread's arena up to the plan's
        // expected batch, so a worker's first (possibly small) batch
        // already sizes the scratch for the largest one to come.
        ScratchArena &arena = ScratchArena::forThisThread();
        if (scratchReserveRows_ > n)
            arena.reserve(scratchReserveRows_,
                          weights_.compressedRows().groupsPerRow());
        if (packed != nullptr) {
            bbs::detail::gemmCompressedKernel(weights_.compressedRows(),
                                              *packed, out, arena, tuning);
        } else {
            if (scratchReserveRows_ > n)
                arena.reservePack(scratchReserveRows_, depth);
            BitSerialMatrix::packInto(*raw, arena.actsPack);
            bbs::detail::gemmCompressedKernel(weights_.compressedRows(),
                                              arena.actsPack, out, arena,
                                              tuning);
        }
        return;
    }
    case PlanKind::Auto:
        break;
    }
    BBS_PANIC("unreachable plan kind");
}

void
MatmulPlan::run(const Int8Tensor &activations, Int32Tensor &out) const
{
    Resolved r = resolveForBatch(activations.shape().dim(0));
    execute(r.kind, r.tuning, &activations, nullptr, out);
}

Int32Tensor
MatmulPlan::run(const Int8Tensor &activations) const
{
    Int32Tensor out;
    run(activations, out);
    return out;
}

void
MatmulPlan::run(const PackedOperand &activations, Int32Tensor &out) const
{
    BBS_REQUIRE(!activations.compressed(),
                "activations must be a dense bit-plane operand");
    const BitSerialMatrix &acts = activations.dense();
    Resolved r = resolveForBatch(acts.rows());
    // Auto's per-dot pick needs element access; for an already-packed
    // batch the compressed-batched kernel serves it bit-identically (an
    // *explicit* PerDot force still rejects packed activations below).
    if (options_.force == PlanKind::Auto && r.kind == PlanKind::PerDot)
        r.kind = PlanKind::CompressedBatched;
    execute(r.kind, r.tuning, nullptr, &acts, out);
}

void
MatmulPlan::runAs(PlanKind kind, const Int8Tensor &activations,
                  Int32Tensor &out) const
{
    BBS_REQUIRE(kind != PlanKind::Auto,
                "runAs() needs an explicit kind; use run() for Auto");
    execute(kind, config_.tuning, &activations, nullptr, out);
}

void
MatmulPlan::runRowBounded(const PackedOperand &activations,
                          std::int64_t weightRows, Int32Tensor &out) const
{
    BBS_REQUIRE(valid(), "running an empty MatmulPlan");
    BBS_REQUIRE(!weights_.compressed(),
                "row-bounded runs need dense bit-plane weights (the "
                "KV-cache view contract)");
    BBS_REQUIRE(!activations.compressed(),
                "activations must be a dense bit-plane operand");
    std::optional<ScopedEngineConfig> scope;
    if (!configInert_)
        scope.emplace(config_);
#if BBS_OBS
    RunTimer runTimer{PlanKind::TiledBitSerial};
#endif
    bbs::detail::gemmBitSerialKernel(activations.dense(),
                                     weights_.dense(), out,
                                     config_.tuning, weightRows);
}

} // namespace bbs::engine
