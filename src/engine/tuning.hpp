/**
 * @file
 * TuningParams — the kernel/selection constants that used to be baked
 * into the source, promoted to a value type the engine carries around
 * (EngineConfig::tuning) and the autotuner sweeps.
 *
 * Three families of knobs:
 *
 *  - **GEMM cache blocking** (`depthBlockWords`): how many 64-column
 *    plane words the dense tiled kernel streams per cache block. 0 means
 *    "derive from the machine": resolvedDepthBlockWords() sizes the block
 *    so the four resident plane rows (2 activation + 2 weight) fill about
 *    half of the detected L1d (engine/cache_topology.hpp) — on a 32 KiB
 *    L1d that reproduces the old hard-coded 512 words (16 KiB).
 *  - **Register tile** (`tileRows` x `tileCols`): 2x2 runs the SIMD
 *    andPopcountTile micro-kernel (four AND+popcount streams sharing
 *    four plane loads); 1x1 runs the plain andPopcountAccumulate stream.
 *    2x2 wins everywhere measured so far, but the choice is now a
 *    sweepable parameter instead of an article of faith.
 *  - **selectKind crossovers**: the batch / stored-bits / tiny-shape
 *    thresholds MatmulPlan::selectKind keys on.
 *
 * All parameter combinations are bit-identical by construction (they
 * change traversal order and kernel shape, never arithmetic), so tuning
 * is purely a performance decision — the test suite fuzzes that pin.
 */
#ifndef BBS_ENGINE_TUNING_HPP
#define BBS_ENGINE_TUNING_HPP

#include <cstdint>

namespace bbs::engine {

struct TuningParams
{
    /** Depth words per dense-GEMM cache block; 0 = derive from the
     *  detected cache topology (resolvedDepthBlockWords()). */
    std::int64_t depthBlockWords = 0;

    /** Activation rows per register tile (1 or 2). */
    int tileRows = 2;
    /** Weight rows per register tile (1 or 2). */
    int tileCols = 2;

    /** Weight rows per compressed-GEMM stage-2 tile (1..8): rows in the
     *  same tile share every activation-window load. Formerly the
     *  hard-coded row-pair constant; the autotuner sweeps it now. */
    int compressedRowTile = 2;

    /** selectKind: batches up to this size take the per-dot loop for
     *  compressed weights (nothing amortizes the activation pack). */
    std::int64_t perDotMaxBatch = 1;
    /** selectKind: compressed operands storing at least this many mean
     *  bits take the dense tiled kernel (compression was a no-op). */
    double denseStoredBits = 8.0;
    /** selectKind: weight matrices with at most this many rows are
     *  "tiny" — the batched GEMM's stage-1 staging cannot amortize over
     *  enough output channels, so moderate batches stay per-dot. */
    std::int64_t tinyRows = 2;
    /** selectKind: depths at most this many columns are "tiny" (half a
     *  packed word) — same per-dot preference as tinyRows. */
    std::int64_t tinyDepth = 32;
    /** selectKind: largest batch the tiny-shape rules may steer to
     *  per-dot; beyond it batching wins regardless of shape. */
    std::int64_t tinyBatchMax = 8;

    /** depthBlockWords with 0 resolved against the detected cache
     *  topology; always a power of two in [128, 4096]. */
    std::int64_t resolvedDepthBlockWords() const;
};

} // namespace bbs::engine

#endif // BBS_ENGINE_TUNING_HPP
