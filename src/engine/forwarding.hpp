/**
 * @file
 * Forward declarations of the engine facade's free-function surface.
 *
 * The legacy compute headers (core/bbs_dot.hpp, gemm/gemm.hpp,
 * gemm/compressed_gemm.hpp) define their compatibility wrappers as inline
 * delegations to these functions, and including the full Session/Plan
 * machinery from those headers would be circular — so the free functions
 * are declared here against forward-declared operand types only. They are
 * part of the engine API proper (conveniences over `defaultSession()`);
 * engine/session.cpp defines them through the same plans every other call
 * path uses.
 */
#ifndef BBS_ENGINE_FORWARDING_HPP
#define BBS_ENGINE_FORWARDING_HPP

#include <cstdint>
#include <span>

#include "core/dot_kernels.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

class BitSerialMatrix;
class CompressedRowPlanes;

namespace engine {

/** Which executable form of the bit-serial dot product to run. */
enum class DotMethod
{
    Reference,      ///< dense per-element reference (Eq. 1)
    ZeroSkip,       ///< zero-bit skipping over packed planes (Eq. 2)
    ZeroSkipScalar, ///< per-element loop form of ZeroSkip (test pin)
    Bbs,            ///< bi-directional skipping over packed planes (Eq. 2/3)
    BbsScalar,      ///< per-element loop form of Bbs (test pin)
};

/**
 * One dot product through the default Session. effectualOps and
 * invertedColumns are meaningful for the Bbs forms only (zero otherwise).
 */
BbsDotResult dot(std::span<const std::int8_t> weights,
                 std::span<const std::int8_t> activations,
                 DotMethod method = DotMethod::Bbs);

/**
 * Compressed-domain dot against one BBS group through the default
 * Session; @p scalarReference selects the per-element pin form.
 */
BbsDotResult dotCompressed(const CompressedGroup &cg,
                           std::span<const std::int8_t> activations,
                           bool scalarReference = false);

/**
 * Dense bit-serial GEMM (activations [N, C] x weights [K, C] -> [N, K])
 * through a default-Session plan forced to the tiled bit-serial kind.
 */
Int32Tensor matmulBitSerial(const BitSerialMatrix &activations,
                            const BitSerialMatrix &weights);

/**
 * Compressed-domain GEMM through a default-Session plan forced to the
 * compressed-batched kind (bit-exact against the per-dot path).
 */
Int32Tensor matmulCompressed(const CompressedRowPlanes &weights,
                             const BitSerialMatrix &activations);

/** Same, into a caller-owned output buffer (serving hot path). */
void matmulCompressedInto(const CompressedRowPlanes &weights,
                          const BitSerialMatrix &activations,
                          Int32Tensor &out);

} // namespace engine
} // namespace bbs

#endif // BBS_ENGINE_FORWARDING_HPP
