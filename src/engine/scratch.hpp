/**
 * @file
 * Per-thread scratch arena for the compressed GEMM's stage-1 staging
 * (activation window planes + per-group activation sums).
 *
 * The arena used to be an anonymous pair of thread_locals inside
 * gemm/compressed_gemm.cpp; the engine owns the type now so Sessions can
 * pre-reserve it (EngineConfig::scratchReserveRows /
 * ShapeHints::expectedBatch) and so its sizing policy is visible API, not
 * a kernel implementation detail. Arenas keep their high-water allocation
 * for the thread's lifetime: a serving worker draining batch after batch
 * pays zero allocations after the first.
 *
 * Threading contract (unchanged from the kernel-local version): the
 * kernel resolves the calling thread's arena ONCE at entry and hands its
 * workers raw pointers — parallelFor workers are fresh threads, and a
 * lambda naming the thread_local would resolve to the worker's own empty
 * instance.
 */
#ifndef BBS_ENGINE_SCRATCH_HPP
#define BBS_ENGINE_SCRATCH_HPP

#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/bit_utils.hpp"
#include "gemm/bit_serial_matrix.hpp"

namespace bbs::engine {

struct ScratchArena
{
    /** Stage-1 activation window planes, kWeightBits words per
     *  (sample, group); 64-byte aligned so each 8-word window is exactly
     *  one cache line. */
    AlignedVector<std::uint64_t> windows;
    /** Per-(sample, group) sum-of-activations terms. */
    std::vector<std::int64_t> sums;
    /** Reusable bit-plane packing of the current activation batch: plan
     *  runs repack each batch in place here (BitSerialMatrix::packInto),
     *  so steady-state execution packs with zero allocations. */
    BitSerialMatrix actsPack;

    /** Grow (never shrink) to hold @p rows x @p groupsPerRow staging. */
    void
    reserve(std::int64_t rows, std::int64_t groupsPerRow)
    {
        if (rows <= 0 || groupsPerRow <= 0)
            return;
        std::size_t cells = static_cast<std::size_t>(rows * groupsPerRow);
        if (windows.size() < cells * kWeightBits)
            windows.resize(cells * kWeightBits);
        if (sums.size() < cells)
            sums.resize(cells);
    }

    /** Grow the activation-pack buffer for @p rows x @p cols batches. */
    void
    reservePack(std::int64_t rows, std::int64_t cols)
    {
        actsPack.reserve(rows, cols);
    }

    /** The calling thread's arena (kept for the thread's lifetime). */
    static ScratchArena &
    forThisThread()
    {
        static thread_local ScratchArena arena;
        return arena;
    }
};

} // namespace bbs::engine

#endif // BBS_ENGINE_SCRATCH_HPP
