/**
 * @file
 * MatmulPlan — a prepared decision about *how* to execute
 * activations x packed-weights, created once via `Session::plan()` and
 * executed with `run()`.
 *
 * The plan picks among the library's three executable matmul forms:
 *
 *  - **PerDot**: the per-(sample, channel) compressed-domain dot loop —
 *    nothing to amortize an activation pack over, so it wins at batch 1
 *    (the serving fast path is this plan decision, not batcher
 *    special-casing);
 *  - **TiledBitSerial**: the dense 2x1x2 AND+popcount register-tile GEMM
 *    — for dense operands, and for "compressed" operands whose groups
 *    kept all 8 columns (compression was a no-op, so the group-windowed
 *    kernel pays overhead for nothing);
 *  - **CompressedBatched**: the batched compressed-domain GEMM (stage-1
 *    window staging shared by every weight row).
 *
 * Selection reads the batch size and the operand's stored-bit sparsity;
 * `PlanOptions::force` is the explicit-override escape hatch. All three
 * kinds are bit-identical on the same operands (the test suite pins
 * this), so the choice is purely a performance decision.
 */
#ifndef BBS_ENGINE_PLAN_HPP
#define BBS_ENGINE_PLAN_HPP

#include <cstdint>
#include <memory>

#include "engine/engine_config.hpp"
#include "engine/packed_operand.hpp"

namespace bbs::engine {

class TuningCache;
struct TuneEntry;

/** Execution form of a matmul plan. */
enum class PlanKind
{
    Auto = 0,          ///< resolve from batch size + operand sparsity
    PerDot,            ///< per-(sample, channel) compressed-domain dots
    TiledBitSerial,    ///< dense 2x1x2 AND+popcount register-tile GEMM
    CompressedBatched, ///< batched compressed-domain GEMM
};

/** "auto" / "per-dot" / "tiled-bit-serial" / "compressed-batched". */
const char *planKindName(PlanKind k);

/**
 * Activation-scale calibration policy for integer inference
 * (Int8Network::forward): the axis that used to be three separate
 * forward* entry points.
 */
enum class Calibration
{
    PerBatch = 0, ///< one shared scale per batch (offline evaluation)
    PerRow,       ///< per-sample scales: a row's logits never depend on
                  ///< its co-batched rows (the serving contract)
};

/** Workload shape hints a plan is created against. */
struct ShapeHints
{
    /**
     * Expected activation rows per run (a server's maxBatch, an
     * evaluator's mini-batch). The plan pre-reserves the planning
     * thread's scratch arena at creation and grows the *executing*
     * thread's arena to this many rows on every compressed-batched run,
     * so a fresh worker thread's first (possibly small) batch already
     * sizes the scratch for the largest one to come. 0 = unknown.
     */
    std::int64_t expectedBatch = 0;
};

/** Plan-creation options. */
struct PlanOptions
{
    /** Explicit execution override; Auto lets the plan decide per run. */
    PlanKind force = PlanKind::Auto;
};

class MatmulPlan
{
  public:
    MatmulPlan() = default;

    bool valid() const { return !weights_.empty(); }
    const PackedOperand &weights() const { return weights_; }
    const ShapeHints &hints() const { return hints_; }
    PlanKind forcedKind() const { return options_.force; }

    /** The kind a run with @p batch activation rows executes. */
    PlanKind kindForBatch(std::int64_t batch) const;

    /**
     * The pure selection heuristic (also what `bbs_cli engine-info`
     * prints): dense operands always take the tiled kernel; compressed
     * operands take per-dot up to TuningParams::perDotMaxBatch rows
     * (nothing amortizes the activation pack) — and beyond that for
     * *tiny* matrices (weightRows <= tinyRows or depth <= tinyDepth at
     * batch <= tinyBatchMax), where the batched kernels' staging
     * overhead exceeds the whole dot-loop cost; the tiled kernel when
     * compression removed no columns (meanStoredBits >= denseStoredBits),
     * and the compressed-batched kernel otherwise. All crossovers come
     * from @p tuning, so the autotuner's measured winners and the hand
     * heuristic share one code path.
     */
    static PlanKind selectKind(std::int64_t weightRows, std::int64_t depth,
                               std::int64_t batch, bool compressedWeights,
                               double meanStoredBits,
                               const TuningParams &tuning);

    /** Default-crossover form (CLI / tests / quick calls). */
    static PlanKind selectKind(std::int64_t weightRows, std::int64_t depth,
                               std::int64_t batch, bool compressedWeights,
                               double meanStoredBits);

    /**
     * Execute on an unpacked INT8 activation batch [N, C] -> out [N, K].
     * @p out is reshaped only when its shape differs (serving loops reuse
     * the buffer). Requires C == weights().cols() and
     * C <= kMaxGemmDepth (the INT32 output guarantee).
     */
    void run(const Int8Tensor &activations, Int32Tensor &out) const;
    Int32Tensor run(const Int8Tensor &activations) const;

    /**
     * Execute on a prepacked dense activation operand (callers that pack
     * once and run several plans). Resolves Auto from the operand's
     * rows; PerDot needs element access and rejects packed activations.
     */
    void run(const PackedOperand &activations, Int32Tensor &out) const;

    /** The escape hatch: run with an explicit kind, overriding both the
     *  plan's forced kind and Auto resolution. */
    void runAs(PlanKind kind, const Int8Tensor &activations,
               Int32Tensor &out) const;

    /**
     * Execute against only the first @p weightRows weight rows
     * (out becomes [N, weightRows]). The growing-N attention entry
     * point: a KV cache's plane store is a fixed-capacity
     * BitSerialMatrix view (viewExternal strides derive from the rows
     * argument, so the view cannot shrink as tokens arrive), and each
     * decode step scores only the rows holding tokens. Requires dense
     * (uncompressed) weights — KV views are dense packings — and
     * executes the tiled bit-serial kernel regardless of the plan's
     * Auto resolution.
     */
    void runRowBounded(const PackedOperand &activations,
                       std::int64_t weightRows, Int32Tensor &out) const;

  private:
    friend class Session;

    /** A per-run decision: the kind plus the kernel parameters it
     *  executes with (a tuning-cache hit overrides the config's). */
    struct Resolved
    {
        PlanKind kind = PlanKind::Auto;
        TuningParams tuning;
    };

    /**
     * Resolve the execution for @p batch rows: explicit force, else the
     * tuning cache's nearest measured winner (when loaded and the cached
     * kind is executable for these weights), else the heuristic.
     * @p countTune: whether this resolution lands in the tune-cache
     * hit/miss/fallback metrics — run() paths count, the introspective
     * kindForBatch() does not (it resolves without executing).
     */
    Resolved resolveForBatch(std::int64_t batch,
                             bool countTune = true) const;

    void execute(PlanKind kind, const TuningParams &tuning,
                 const Int8Tensor *raw, const BitSerialMatrix *packed,
                 Int32Tensor &out) const;

    PackedOperand weights_;
    /** Dense repack of compressed weights, built at plan creation when
     *  the tiled kernel is (or may be) selected for them. */
    std::shared_ptr<const BitSerialMatrix> denseRepack_;
    ShapeHints hints_;
    PlanOptions options_;
    EngineConfig config_; ///< session snapshot, applied around runs
    /** True when config_ would change nothing (thread cap 0, no SIMD
     *  override): execute() then skips the ScopedEngineConfig entirely —
     *  the decision is hoisted to plan creation instead of being
     *  re-derived from atomics on every run. */
    bool configInert_ = true;
    /** The Session's loaded tuning cache (nullptr = heuristic only). */
    std::shared_ptr<const TuningCache> tuneCache_;
    /** max(hints.expectedBatch, config.scratchReserveRows): every
     *  compressed-batched run grows the executing thread's arena to at
     *  least this many rows, so the first small batch on a fresh worker
     *  thread already sizes the scratch for the largest one to come. */
    std::int64_t scratchReserveRows_ = 0;
};

} // namespace bbs::engine

#endif // BBS_ENGINE_PLAN_HPP
