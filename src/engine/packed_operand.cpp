#include "engine/packed_operand.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "core/serialization.hpp"

namespace bbs::engine {

namespace {

/** Non-deleting aliasing holder for view operands. */
template <typename T>
std::shared_ptr<const T>
nonOwning(const T &ref)
{
    return std::shared_ptr<const T>(std::shared_ptr<void>(), &ref);
}

// ---------------------------------------------------------- byte helpers

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xff));
}

/** Bounds-checked little-endian reader; a read past the end clears
 *  `ok` and returns 0 instead of terminating (the caller decides how a
 *  truncated blob fails). */
struct TryByteReader
{
    std::span<const std::uint8_t> bytes;
    std::size_t pos = 0;
    bool ok = true;

    std::uint8_t
    u8()
    {
        if (pos + 1 > bytes.size()) {
            ok = false;
            return 0;
        }
        return bytes[pos++];
    }

    std::uint32_t
    u32()
    {
        if (pos + 4 > bytes.size()) {
            ok = false;
            return 0;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
        return v;
    }

    std::int64_t
    i64()
    {
        if (pos + 8 > bytes.size()) {
            ok = false;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
        return static_cast<std::int64_t>(v);
    }
};

constexpr std::uint32_t kOperandMagic = 0x31504f42u; // "BOP1"

double
meanStoredBitsOf(const CompressedRowPlanes &p)
{
    return p.meanStoredBits();
}

} // namespace

const char *
packKindName(PackKind k)
{
    switch (k) {
    case PackKind::DenseBitPlanes: return "dense-bit-planes";
    case PackKind::CompressedRows: return "compressed-rows";
    }
    return "?";
}

PackedOperand
PackedOperand::packDense(const Int8Tensor &m)
{
    PackedOperand op;
    op.kind_ = PackKind::DenseBitPlanes;
    op.dense_ =
        std::make_shared<const BitSerialMatrix>(BitSerialMatrix::pack(m));
    op.meanStoredBits_ = 8.0;
    return op;
}

PackedOperand
PackedOperand::packDense(std::span<const std::int8_t> values,
                         std::int64_t rows, std::int64_t cols)
{
    PackedOperand op;
    op.kind_ = PackKind::DenseBitPlanes;
    op.dense_ = std::make_shared<const BitSerialMatrix>(
        BitSerialMatrix::pack(values, rows, cols));
    op.meanStoredBits_ = 8.0;
    return op;
}

PackedOperand
PackedOperand::packCompressed(const Int8Tensor &m, const PackOptions &opts)
{
    return fromCompressedTensor(CompressedTensor::compress(
        m, opts.groupSize, opts.targetColumns, opts.strategy));
}

PackedOperand
PackedOperand::fromCompressedTensor(CompressedTensor ct)
{
    PackedOperand op;
    op.kind_ = PackKind::CompressedRows;
    op.tensor_ =
        std::make_shared<const CompressedTensor>(std::move(ct));
    op.rows_ = std::make_shared<const CompressedRowPlanes>(
        CompressedRowPlanes::prepare(*op.tensor_));
    op.meanStoredBits_ = meanStoredBitsOf(*op.rows_);
    return op;
}

PackedOperand
PackedOperand::fromRowGroups(std::span<const CompressedGroup> groups,
                             std::span<const std::int64_t> rowOffsets,
                             std::int64_t cols, std::int64_t groupSize)
{
    PackedOperand op;
    op.kind_ = PackKind::CompressedRows;
    op.rows_ = std::make_shared<const CompressedRowPlanes>(
        CompressedRowPlanes::prepare(groups, rowOffsets, cols, groupSize));
    op.meanStoredBits_ = meanStoredBitsOf(*op.rows_);
    return op;
}

PackedOperand
PackedOperand::fromPrepared(
    std::shared_ptr<const CompressedRowPlanes> planes)
{
    BBS_REQUIRE(planes != nullptr, "null prepared planes");
    PackedOperand op;
    op.kind_ = PackKind::CompressedRows;
    op.rows_ = std::move(planes);
    op.meanStoredBits_ = meanStoredBitsOf(*op.rows_);
    return op;
}

PackedOperand
PackedOperand::mappedDense(std::shared_ptr<const BitSerialMatrix> view)
{
    BBS_REQUIRE(view != nullptr, "null mapped dense view");
    PackedOperand op;
    op.kind_ = PackKind::DenseBitPlanes;
    op.mapped_ = true;
    op.dense_ = std::move(view);
    op.meanStoredBits_ = 8.0;
    return op;
}

PackedOperand
PackedOperand::mappedCompressed(
    std::shared_ptr<const CompressedRowPlanes> view, double meanStoredBits)
{
    BBS_REQUIRE(view != nullptr, "null mapped compressed view");
    BBS_REQUIRE(meanStoredBits >= 0.0 && meanStoredBits <= 8.0,
                "mean stored bits must be 0..8, got ", meanStoredBits);
    PackedOperand op;
    op.kind_ = PackKind::CompressedRows;
    op.mapped_ = true;
    op.rows_ = std::move(view);
    // Precomputed (the container's OperandMeta): scanning the groups
    // here would fault in the whole payload at load time.
    op.meanStoredBits_ = meanStoredBits;
    return op;
}

PackedOperand
PackedOperand::viewDense(const BitSerialMatrix &m)
{
    PackedOperand op;
    op.kind_ = PackKind::DenseBitPlanes;
    op.dense_ = nonOwning(m);
    op.meanStoredBits_ = 8.0;
    return op;
}

PackedOperand
PackedOperand::viewCompressed(const CompressedRowPlanes &p)
{
    PackedOperand op;
    op.kind_ = PackKind::CompressedRows;
    op.rows_ = nonOwning(p);
    op.meanStoredBits_ = meanStoredBitsOf(p);
    return op;
}

std::int64_t
PackedOperand::rows() const
{
    if (kind_ == PackKind::DenseBitPlanes)
        return dense_ ? dense_->rows() : 0;
    return rows_ ? rows_->rows() : 0;
}

std::int64_t
PackedOperand::cols() const
{
    if (kind_ == PackKind::DenseBitPlanes)
        return dense_ ? dense_->cols() : 0;
    return rows_ ? rows_->cols() : 0;
}

const BitSerialMatrix &
PackedOperand::dense() const
{
    BBS_REQUIRE(kind_ == PackKind::DenseBitPlanes && dense_ != nullptr,
                "operand is not a dense bit-plane packing");
    return *dense_;
}

const CompressedRowPlanes &
PackedOperand::compressedRows() const
{
    BBS_REQUIRE(kind_ == PackKind::CompressedRows && rows_ != nullptr,
                "operand is not a compressed row packing");
    return *rows_;
}

Int8Tensor
PackedOperand::unpack() const
{
    if (kind_ == PackKind::DenseBitPlanes)
        return dense().unpack();
    if (tensor_)
        return tensor_->decompress();
    return compressedRows().decompress();
}

std::vector<std::uint8_t>
PackedOperand::serialize() const
{
    BBS_REQUIRE(!empty(), "nothing to serialize");
    std::vector<std::uint8_t> out;
    putU32(out, kOperandMagic);
    out.push_back(static_cast<std::uint8_t>(kind_));

    if (kind_ == PackKind::DenseBitPlanes) {
        Int8Tensor values = dense().unpack();
        out.push_back(0); // strategy slot (unused for dense)
        out.push_back(0); // targetColumns slot
        putI64(out, dense().rows());
        putI64(out, dense().cols());
        putI64(out, 0); // groupSize slot
        putU32(out, 0); // no offset table
        std::size_t base = out.size();
        out.resize(base + static_cast<std::size_t>(values.numel()));
        std::memcpy(out.data() + base, values.data().data(),
                    static_cast<std::size_t>(values.numel()));
        return out;
    }

    BBS_REQUIRE(tensor_ != nullptr,
                "only operands packed from a tensor carry the descriptor "
                "needed to serialize (pack/packCompressed/"
                "fromCompressedTensor); this one wraps prepared row "
                "planes only");
    const CompressedTensor &ct = *tensor_;
    BBS_REQUIRE(ct.shape().rank() == 2,
                "operand serialization expects a rank-2 weight tensor");
    out.push_back(static_cast<std::uint8_t>(ct.strategy()));
    out.push_back(static_cast<std::uint8_t>(ct.targetColumns()));
    putI64(out, ct.shape().dim(0));
    putI64(out, ct.shape().dim(1));
    putI64(out, ct.groupSize());
    SerializedTensor blob = serializeCompressed(ct);
    putU32(out, static_cast<std::uint32_t>(blob.groupOffsets.size()));
    for (std::uint32_t off : blob.groupOffsets)
        putU32(out, off);
    out.insert(out.end(), blob.bytes.begin(), blob.bytes.end());
    return out;
}

bool
PackedOperand::tryDeserialize(std::span<const std::uint8_t> bytes,
                              PackedOperand &out, std::string *error)
{
    auto fail = [error](auto &&...parts) {
        if (error != nullptr)
            *error = bbs::detail::concatMessage(
                std::forward<decltype(parts)>(parts)...);
        return false;
    };

    TryByteReader r{bytes};
    std::uint32_t magic = r.u32();
    if (!r.ok)
        return fail("operand blob truncated");
    if (magic != kOperandMagic)
        return fail("not a PackedOperand blob (bad magic)");
    auto kind = static_cast<PackKind>(r.u8());
    auto strategy = static_cast<PruneStrategy>(r.u8());
    int targetColumns = static_cast<int>(r.u8());
    std::int64_t rows = r.i64();
    std::int64_t cols = r.i64();
    std::int64_t groupSize = r.i64();
    std::uint32_t numOffsets = r.u32();
    if (!r.ok)
        return fail("operand blob truncated");

    if (rows <= 0 || cols <= 0)
        return fail("corrupt operand blob: non-positive shape");

    if (kind == PackKind::DenseBitPlanes) {
        if (numOffsets != 0)
            return fail("corrupt dense operand blob");
        // Bounds-check via division: the blob is untrusted, and rows *
        // cols could sign-overflow before a naive size comparison.
        std::size_t avail = bytes.size() - r.pos;
        if (static_cast<std::uint64_t>(rows) >
            avail / static_cast<std::uint64_t>(cols))
            return fail("operand blob truncated");
        std::size_t count = static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(cols);
        out = packDense(
            std::span<const std::int8_t>(
                reinterpret_cast<const std::int8_t *>(bytes.data()) +
                    r.pos,
                count),
            rows, cols);
        return true;
    }

    if (kind != PackKind::CompressedRows)
        return fail("unknown operand kind in blob");
    if (groupSize < 1 || groupSize > 64)
        return fail("corrupt operand blob: bad group size");
    if (targetColumns > kMaxPrunedColumns)
        return fail("corrupt operand blob: bad target columns");
    if (cols % groupSize != 0)
        return fail("corrupt operand blob: group size does not divide "
                    "the column count");
    // The offset table's size is fully determined by the shape; a
    // mismatched count is corruption, and bounding it here also keeps
    // the reserve() below away from attacker-controlled sizes.
    if (static_cast<std::int64_t>(numOffsets) !=
        rows * (cols / groupSize))
        return fail("corrupt operand blob: offset table count mismatch");
    if (static_cast<std::uint64_t>(numOffsets) >
        (bytes.size() - r.pos) / 4)
        return fail("operand blob truncated");
    SerializedTensor blob;
    blob.groupOffsets.reserve(numOffsets);
    for (std::uint32_t i = 0; i < numOffsets; ++i)
        blob.groupOffsets.push_back(r.u32());
    blob.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(r.pos),
                      bytes.end());
    CompressedTensor ct;
    std::string innerError;
    if (!tryDeserializeCompressed(blob, Shape{rows, cols}, groupSize,
                                  targetColumns, strategy, ct,
                                  error != nullptr ? &innerError : nullptr))
        return fail(innerError);
    out = fromCompressedTensor(std::move(ct));
    return true;
}

PackedOperand
PackedOperand::deserialize(std::span<const std::uint8_t> bytes)
{
    PackedOperand out;
    std::string error;
    if (!tryDeserialize(bytes, out, &error))
        BBS_FATAL(error);
    return out;
}

} // namespace bbs::engine
