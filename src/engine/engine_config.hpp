/**
 * @file
 * EngineConfig — the single source of truth for the runtime knobs that
 * used to be scattered across env-var reads and global setters: the
 * worker-thread cap (BBS_THREADS / setWorkerThreadCap), the SIMD dispatch
 * level (BBS_SIMD / setSimdLevel), and the GEMM scratch-arena reservation.
 *
 * Both environment variables are parsed HERE and nowhere else:
 * common/parallel.hpp and simd/simd.cpp consume `threadCapFromEnv()` /
 * `simdLevelFromEnv()` instead of re-reading the environment themselves,
 * so there is exactly one tested parse path per knob.
 *
 * A default-constructed config *inherits* the process-wide state (it
 * never clobbers a runtime setWorkerThreadCap/setSimdLevel override);
 * `fromEnv()` snapshots what the environment requests explicitly.
 */
#ifndef BBS_ENGINE_ENGINE_CONFIG_HPP
#define BBS_ENGINE_ENGINE_CONFIG_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "engine/tuning.hpp"
#include "simd/simd.hpp"

namespace bbs::engine {

struct EngineConfig
{
    /**
     * Worker-thread cap for the parallel primitives while this config is
     * applied. 0 = inherit the process-wide cap (hardware concurrency,
     * clamped by BBS_THREADS / setWorkerThreadCap). A positive value can
     * lower the cap, never raise it above the BBS_THREADS ceiling
     * (setWorkerThreadCap semantics).
     */
    unsigned threadCap = 0;

    /**
     * SIMD dispatch level while this config is applied. nullopt = inherit
     * the active level. A set level must be CPU-supported
     * (simdLevelSupported); fromEnv() only ever produces supported levels.
     */
    std::optional<SimdLevel> simdLevel;

    /**
     * Scratch-arena pre-reservation hint: plans created through a
     * Session holding this config grow the GEMM stage-1 scratch arena to
     * hold this many activation rows — on the planning thread at
     * creation, and on each *executing* thread at its first
     * compressed-batched run (worker threads have their own arenas), so
     * small first batches already size the scratch for the largest one
     * to come. 0 = size on demand. Session::plan() takes the max of this
     * and the plan's own ShapeHints::expectedBatch.
     */
    std::int64_t scratchReserveRows = 0;

    /**
     * Kernel/selection tuning parameters plans created through this
     * config execute with (GEMM depth blocking, register tile,
     * selectKind crossovers). Defaults derive the depth block from the
     * detected cache topology; the autotuner's measured winners override
     * per shape class via the tuning cache.
     */
    TuningParams tuning;

    /**
     * Persistent tuning-cache location a Session loads at creation.
     * "" = consult the BBS_TUNE_CACHE environment variable (unset ->
     * no cache); "none" = explicitly disabled even when the env var is
     * set (heuristic-only baselines while a cache is deployed).
     */
    std::string tuneCachePath;

    /**
     * Snapshot of what the environment explicitly requests: threadCap
     * from BBS_THREADS (0 when unset/invalid/uncapping), simdLevel from
     * BBS_SIMD (nullopt when unset; an unsupported request degrades to
     * the best supported level with a warning, so the snapshot is always
     * applicable).
     */
    static EngineConfig fromEnv();

    /**
     * Parse a BBS_THREADS-style cap: a positive integer below @p hw
     * clamps the worker count; anything else (null, malformed, zero,
     * negative, or >= hw) leaves it at @p hw.
     */
    static unsigned parseThreadCap(const char *env, unsigned hw);

    /**
     * Parse a BBS_SIMD value to a SimdLevel integer; -1 for unset or (with
     * a warning) an unrecognised string.
     */
    static int parseSimdLevel(const char *env);

    /**
     * The startup worker cap: hardware concurrency clamped by
     * BBS_THREADS. This is the one place the BBS_THREADS environment
     * variable is resolved; common/parallel.hpp caches it once.
     */
    static unsigned threadCapFromEnv();

    /**
     * The startup dispatch level: the highest CPU-supported level,
     * lowered (never raised) by BBS_SIMD. A request above what the CPU
     * supports degrades to the best supported level with a warning, so CI
     * matrices pinning BBS_SIMD pass on older runners. This is the one
     * place BBS_SIMD is resolved; simd/simd.cpp caches it once.
     */
    static SimdLevel simdLevelFromEnv();
};

/**
 * RAII application of an EngineConfig to the process-wide runtime state
 * (worker-cap override + active SIMD table) for the duration of one
 * engine call; the previous state is restored on destruction. Inherit
 * fields (threadCap 0 / simdLevel nullopt) touch nothing — the default
 * Session's calls cost two relaxed atomic loads here.
 *
 * The underlying knobs are process-global, so two sessions with
 * *different* explicit configs racing on separate threads see each
 * other's settings — same contract as the setWorkerThreadCap /
 * setSimdLevel primitives this scopes.
 */
class ScopedEngineConfig
{
  public:
    explicit ScopedEngineConfig(const EngineConfig &cfg);
    ~ScopedEngineConfig();

    ScopedEngineConfig(const ScopedEngineConfig &) = delete;
    ScopedEngineConfig &operator=(const ScopedEngineConfig &) = delete;

  private:
    unsigned prevCap_ = 0;
    SimdLevel prevSimd_ = SimdLevel::Scalar;
    bool capChanged_ = false;
    bool simdChanged_ = false;
};

} // namespace bbs::engine

#endif // BBS_ENGINE_ENGINE_CONFIG_HPP
