#include "engine/autotune.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "engine/session.hpp"

namespace bbs::engine {

namespace {

/** Inverse of planKindName for the executable kinds; false on "auto" or
 *  anything unrecognised (a corrupt cache record). */
bool
planKindFromString(const std::string &s, PlanKind &out)
{
    for (PlanKind k : {PlanKind::PerDot, PlanKind::TiledBitSerial,
                       PlanKind::CompressedBatched}) {
        if (s == planKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

/** |log2(a/b)| with both clamped to >= 1 — the shape-class distance on
 *  one axis (doubling a dimension costs 1.0). */
double
logDist(std::int64_t a, std::int64_t b)
{
    double fa = static_cast<double>(std::max<std::int64_t>(a, 1));
    double fb = static_cast<double>(std::max<std::int64_t>(b, 1));
    return std::abs(std::log2(fa / fb));
}

/** Acceptance radius for nearest-shape lookup: within a cumulative
 *  factor-of-4 in log-shape space an entry's winner is trusted; farther
 *  shapes fall back to the heuristic. */
constexpr double kLookupRadius = 2.0;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// ------------------------------------------------- tolerant JSON access
//
// The cache format is the bench --json record shape, so a hand-rolled
// key scanner suffices; every helper reports failure instead of
// throwing, and load() maps any failure to "no cache".

bool
findNumber(const std::string &s, const char *key, double &out)
{
    std::string k = std::string("\"") + key + "\"";
    std::size_t p = s.find(k);
    if (p == std::string::npos)
        return false;
    p = s.find(':', p + k.size());
    if (p == std::string::npos)
        return false;
    const char *begin = s.c_str() + p + 1;
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin)
        return false;
    out = v;
    return true;
}

bool
findInt(const std::string &s, const char *key, std::int64_t &out)
{
    double v = 0.0;
    if (!findNumber(s, key, v))
        return false;
    out = static_cast<std::int64_t>(v);
    return true;
}

bool
findString(const std::string &s, const char *key, std::string &out)
{
    std::string k = std::string("\"") + key + "\"";
    std::size_t p = s.find(k);
    if (p == std::string::npos)
        return false;
    p = s.find(':', p + k.size());
    if (p == std::string::npos)
        return false;
    std::size_t open = s.find('"', p);
    if (open == std::string::npos)
        return false;
    std::size_t close = s.find('"', open + 1);
    if (close == std::string::npos)
        return false;
    out = s.substr(open + 1, close - open - 1);
    return true;
}

/** Parse one record object; false on any missing/invalid field. */
bool
parseRecord(const std::string &rec, TuneEntry &e)
{
    std::string kind;
    if (!findString(rec, "kernel", kind) ||
        !planKindFromString(kind, e.kind))
        return false;
    if (!findString(rec, "simd", e.simd))
        return false;
    std::int64_t threads = 0;
    if (!findInt(rec, "threads", threads) || threads < 0)
        return false;
    e.threads = static_cast<unsigned>(threads);
    if (!findInt(rec, "rows", e.rows) || e.rows <= 0)
        return false;
    if (!findInt(rec, "depth", e.depth) || e.depth <= 0)
        return false;
    if (!findInt(rec, "batch", e.batch) || e.batch <= 0)
        return false;
    if (!findNumber(rec, "storedBits", e.storedBits))
        return false;
    // Kernel-parameter fields default when absent (older writers).
    findInt(rec, "depthBlockWords", e.depthBlockWords);
    std::int64_t tile = 0;
    if (findInt(rec, "tileRows", tile))
        e.tileRows = static_cast<int>(tile);
    if (findInt(rec, "tileCols", tile))
        e.tileCols = static_cast<int>(tile);
    if (findInt(rec, "rowTile", tile))
        e.rowTile = static_cast<int>(tile);
    findNumber(rec, "seconds", e.seconds);
    return true;
}

} // namespace

bool
TuningCache::hasKind(PlanKind k) const
{
    for (const TuneEntry &e : entries)
        if (e.kind == k)
            return true;
    return false;
}

const TuneEntry *
TuningCache::lookup(std::int64_t rows, std::int64_t depth,
                    std::int64_t batch, double storedBits,
                    const char *simdName, unsigned threads) const
{
    const TuneEntry *best = nullptr;
    double bestDist = std::numeric_limits<double>::infinity();
    for (const TuneEntry &e : entries) {
        if (e.simd != simdName)
            continue;
        double dist = logDist(rows, e.rows) + logDist(depth, e.depth) +
                      logDist(batch, e.batch) +
                      std::abs(storedBits - e.storedBits) / 4.0 +
                      (threads == e.threads ? 0.0 : 0.5);
        if (dist < bestDist) {
            bestDist = dist;
            best = &e;
        }
    }
    return bestDist <= kLookupRadius ? best : nullptr;
}

bool
TuningCache::save(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\"bench\": \"autotune\", \"version\": " << kVersion
       << ", \"records\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const TuneEntry &e = entries[i];
        os << "  {\"kernel\": \"" << planKindName(e.kind)
           << "\", \"config\": \"r" << e.rows << " d" << e.depth << " b"
           << e.batch << "\", \"simd\": \"" << e.simd
           << "\", \"threads\": " << e.threads << ", \"rows\": " << e.rows
           << ", \"depth\": " << e.depth << ", \"batch\": " << e.batch
           << ", \"storedBits\": " << std::setprecision(6) << e.storedBits
           << ", \"depthBlockWords\": " << e.depthBlockWords
           << ", \"tileRows\": " << e.tileRows
           << ", \"tileCols\": " << e.tileCols
           << ", \"rowTile\": " << e.rowTile
           << ", \"seconds\": " << std::setprecision(9) << e.seconds
           << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "]}\n";
    return os.good();
}

bool
TuningCache::load(const std::string &path, TuningCache &out)
{
    out.entries.clear();
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();

    std::int64_t version = 0;
    if (!findInt(text, "version", version) || version != kVersion)
        return false;
    std::size_t pos = text.find("\"records\"");
    if (pos == std::string::npos)
        return false;
    pos = text.find('[', pos);
    if (pos == std::string::npos)
        return false;
    ++pos;
    while (true) {
        while (pos < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[pos])) ||
                text[pos] == ','))
            ++pos;
        if (pos >= text.size()) {
            // Truncated file: the array never closes.
            out.entries.clear();
            return false;
        }
        if (text[pos] == ']')
            break;
        if (text[pos] != '{') {
            out.entries.clear();
            return false;
        }
        std::size_t end = text.find('}', pos);
        if (end == std::string::npos) {
            out.entries.clear();
            return false;
        }
        TuneEntry e;
        if (!parseRecord(text.substr(pos, end - pos + 1), e)) {
            out.entries.clear();
            return false;
        }
        out.entries.push_back(std::move(e));
        pos = end + 1;
    }
    return true;
}

// ------------------------------------------------------------ autotuner

namespace {

/** Deterministic small-magnitude INT8 fill (an LCG, so the tuner needs
 *  no <random> state and two runs over the same shape see the same
 *  operands). Small magnitudes keep the BBS compressor representative. */
void
fillTensor(Int8Tensor &t, std::uint64_t seed)
{
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        t.flat(i) = static_cast<std::int8_t>(
            static_cast<std::int64_t>(state >> 33) % 31 - 15);
    }
}

/** One measured configuration. */
struct Candidate
{
    PlanKind kind = PlanKind::Auto;
    std::int64_t depthBlockWords = 0; ///< 0 = topology default
    int tileRows = 2;
    int tileCols = 2;
    int rowTile = 2; ///< compressed-GEMM stage-2 rows per tile
};

/** Depth-block sweep for the tiled kernel: the topology default plus
 *  every power-of-two candidate that actually splits this depth (blocks
 *  at or beyond the operand's word count all execute identically). */
std::vector<std::int64_t>
depthBlockCandidates(std::int64_t depth)
{
    std::vector<std::int64_t> out{0};
    std::int64_t usedWords = (depth + 63) / 64;
    for (std::int64_t c : {128, 256, 512, 1024, 2048})
        if (c < usedWords)
            out.push_back(c);
    return out;
}

} // namespace

TuneEntry
autotuneShape(const TuneShape &shape, const AutotuneOptions &opts)
{
    BBS_REQUIRE(shape.rows > 0 && shape.depth > 0 && shape.batch > 0,
                "autotuneShape needs positive rows/depth/batch, got ",
                shape.rows, "x", shape.depth, " batch ", shape.batch);
    Int8Tensor w(Shape{shape.rows, shape.depth});
    Int8Tensor x(Shape{shape.batch, shape.depth});
    fillTensor(w, static_cast<std::uint64_t>(shape.rows * 131 +
                                             shape.depth));
    fillTensor(x, static_cast<std::uint64_t>(shape.batch * 257 +
                                             shape.depth * 3 + 1));

    EngineConfig baseCfg;
    baseCfg.tuneCachePath = "none"; // the tuner measures, never consults
    Session base(baseCfg);
    PackOptions packOpts;
    packOpts.groupSize = opts.groupSize;
    packOpts.targetColumns = opts.targetColumns;
    PackedOperand weights = base.pack(w, packOpts);

    std::vector<Candidate> candidates;
    // Per-dot scales with batch x rows x groups and is strictly
    // dominated by the batched kernels well before batch 32; pruning it
    // there keeps suite time bounded without affecting any winner.
    if (shape.batch <= 32)
        candidates.push_back({PlanKind::PerDot, 0, 2, 2, 2});
    // Row-tile sweep for the compressed kernel: 2 is the register-pair
    // fast path; 1 and 4 trade window reloads against accumulator
    // pressure and can win at the shape extremes.
    for (int rt : {1, 2, 4})
        candidates.push_back({PlanKind::CompressedBatched, 0, 2, 2, rt});
    for (std::int64_t db : depthBlockCandidates(shape.depth))
        candidates.push_back({PlanKind::TiledBitSerial, db, 2, 2, 2});
    candidates.push_back({PlanKind::TiledBitSerial, 0, 1, 1, 2});

    Int32Tensor ref;
    Int32Tensor out;
    TuneEntry entry;
    entry.simd = simdLevelName(activeSimdLevel());
    entry.threads = maxWorkerThreads();
    entry.rows = shape.rows;
    entry.depth = shape.depth;
    entry.batch = shape.batch;
    entry.storedBits = weights.meanStoredBits();
    entry.seconds = std::numeric_limits<double>::infinity();

    for (const Candidate &c : candidates) {
        EngineConfig cfg;
        cfg.tuneCachePath = "none";
        cfg.tuning.depthBlockWords = c.depthBlockWords;
        cfg.tuning.tileRows = c.tileRows;
        cfg.tuning.tileCols = c.tileCols;
        cfg.tuning.compressedRowTile = c.rowTile;
        Session s(cfg);
        ShapeHints hints;
        hints.expectedBatch = shape.batch;
        MatmulPlan plan = s.plan(weights, hints, {c.kind});

        // First run doubles as the bit-identity check: every candidate
        // must produce the same outputs, or a tuned pick could change
        // results (the invariant tests/test_autotune.cpp fuzzes).
        plan.run(x, out);
        if (ref.numel() == 0) {
            ref = out;
        } else {
            BBS_ASSERT(std::equal(ref.data().begin(), ref.data().end(),
                                  out.data().begin()),
                       "autotune candidate ", planKindName(c.kind),
                       " diverged from reference output");
        }
        for (int i = 1; i < opts.warmup; ++i)
            plan.run(x, out);
        double best = std::numeric_limits<double>::infinity();
        for (int r = 0; r < std::max(1, opts.reps); ++r) {
            double t0 = nowSeconds();
            plan.run(x, out);
            best = std::min(best, nowSeconds() - t0);
        }
        if (best < entry.seconds) {
            entry.seconds = best;
            entry.kind = c.kind;
            entry.depthBlockWords = c.depthBlockWords;
            entry.tileRows = c.tileRows;
            entry.tileCols = c.tileCols;
            entry.rowTile = c.rowTile;
        }
    }
    return entry;
}

TuningCache
autotuneShapes(const std::vector<TuneShape> &shapes,
               const AutotuneOptions &opts)
{
    TuningCache cache;
    cache.entries.reserve(shapes.size());
    for (const TuneShape &s : shapes)
        cache.entries.push_back(autotuneShape(s, opts));
    return cache;
}

TuningCache
autotuneSuite(const AutotuneOptions &opts)
{
    std::vector<TuneShape> shapes;
    for (std::int64_t rows : {64, 256})
        for (std::int64_t depth : {256, 512})
            for (std::int64_t batch : {1, 8, 64, 256})
                shapes.push_back({rows, depth, batch});
    return autotuneShapes(shapes, opts);
}

// ------------------------------------------------------- session loading

namespace detail {

std::string
resolveTuneCachePath(const std::string &configured)
{
    if (configured == "none")
        return "";
    if (!configured.empty())
        return configured;
    const char *env = std::getenv("BBS_TUNE_CACHE");
    return env != nullptr ? std::string(env) : std::string();
}

std::shared_ptr<const TuningCache>
loadTuningCacheShared(const std::string &path)
{
    static std::mutex m;
    static std::map<std::string,
                    std::shared_ptr<const TuningCache>> loaded;
    std::lock_guard<std::mutex> lock(m);
    auto it = loaded.find(path);
    if (it != loaded.end())
        return it->second;
    TuningCache cache;
    std::shared_ptr<const TuningCache> result;
    if (TuningCache::load(path, cache)) {
        result = std::make_shared<const TuningCache>(std::move(cache));
    } else {
        // Absent or malformed: heuristic-only, warned once per path.
        warn("tuning cache '", path,
             "' missing or unreadable; using the selection heuristic");
    }
    loaded.emplace(path, result);
    return result;
}

} // namespace detail

} // namespace bbs::engine
