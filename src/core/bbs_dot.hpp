/**
 * @file
 * COMPATIBILITY WRAPPERS for the bit-serial dot products (the paper's
 * Eq. 1-3).
 *
 * Since the engine facade landed (engine/engine.hpp), the canonical way
 * to run a dot product is `engine::Session::dot()` /
 * `engine::Session::dotCompressed()` (or the `engine::dot*` free-function
 * conveniences over the default Session). The free functions below are
 * the pre-engine entry points, kept as thin header-level wrappers that
 * delegate to the internal default Session — the test suite pins them
 * bit-identical to their pre-redesign outputs. New code should target the
 * engine API; build with -DBBS_LEGACY_WRAPPERS=OFF to compile without
 * this layer entirely.
 *
 * The executable forms themselves (dense reference, zero-bit skipping,
 * bi-directional BBS skipping, compressed-domain, and their per-element
 * scalar twins) live in core/dot_kernels.hpp / bbs_dot.cpp. All forms
 * agree exactly; the test suite enforces this.
 */
#ifndef BBS_CORE_BBS_DOT_HPP
#define BBS_CORE_BBS_DOT_HPP

#include <cstdint>
#include <span>

#include "common/compat.hpp"
#include "core/dot_kernels.hpp"
#include "core/group_compressor.hpp"
#include "engine/forwarding.hpp"

namespace bbs {

#if BBS_LEGACY_WRAPPERS

/** @deprecated Compatibility wrapper over
 *  engine::dot(.., DotMethod::Reference). */
inline std::int64_t
dotReference(std::span<const std::int8_t> weights,
             std::span<const std::int8_t> activations)
{
    return engine::dot(weights, activations, engine::DotMethod::Reference)
        .value;
}

/** @deprecated Compatibility wrapper over
 *  engine::dot(.., DotMethod::ZeroSkip). */
inline std::int64_t
dotBitSerialZeroSkip(std::span<const std::int8_t> weights,
                     std::span<const std::int8_t> activations)
{
    return engine::dot(weights, activations, engine::DotMethod::ZeroSkip)
        .value;
}

/** @deprecated Compatibility wrapper over
 *  engine::dot(.., DotMethod::Bbs). */
inline BbsDotResult
dotBitSerialBbs(std::span<const std::int8_t> weights,
                std::span<const std::int8_t> activations)
{
    return engine::dot(weights, activations, engine::DotMethod::Bbs);
}

/** @deprecated Compatibility wrapper over engine::dotCompressed(). */
inline BbsDotResult
dotCompressed(const CompressedGroup &cg,
              std::span<const std::int8_t> activations)
{
    return engine::dotCompressed(cg, activations);
}

/** @deprecated Compatibility wrapper over
 *  engine::dot(.., DotMethod::ZeroSkipScalar). */
inline std::int64_t
dotBitSerialZeroSkipScalar(std::span<const std::int8_t> weights,
                           std::span<const std::int8_t> activations)
{
    return engine::dot(weights, activations,
                       engine::DotMethod::ZeroSkipScalar)
        .value;
}

/** @deprecated Compatibility wrapper over
 *  engine::dot(.., DotMethod::BbsScalar). */
inline BbsDotResult
dotBitSerialBbsScalar(std::span<const std::int8_t> weights,
                      std::span<const std::int8_t> activations)
{
    return engine::dot(weights, activations, engine::DotMethod::BbsScalar);
}

/** @deprecated Compatibility wrapper over
 *  engine::dotCompressed(.., scalarReference=true). */
inline BbsDotResult
dotCompressedScalar(const CompressedGroup &cg,
                    std::span<const std::int8_t> activations)
{
    return engine::dotCompressed(cg, activations,
                                 /*scalarReference=*/true);
}

#endif // BBS_LEGACY_WRAPPERS

} // namespace bbs

#endif // BBS_CORE_BBS_DOT_HPP
