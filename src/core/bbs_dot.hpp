/**
 * @file
 * Bit-serial dot products (the paper's Eq. 1-3) in three executable forms:
 * the dense reference, zero-bit skipping (Eq. 2), bi-directional skipping
 * (Eq. 2/3 with per-column inversion), and the compressed-domain form the
 * BitVert PE computes (surviving columns bit-serially, pruned columns via
 * the BBS-constant x sum-of-activations multiplier).
 *
 * All forms must agree exactly; the test suite enforces this.
 */
#ifndef BBS_CORE_BBS_DOT_HPP
#define BBS_CORE_BBS_DOT_HPP

#include <cstdint>
#include <span>

#include "core/group_compressor.hpp"

namespace bbs {

/** Dense reference: sum of W_i * A_i in full precision. */
std::int64_t dotReference(std::span<const std::int8_t> weights,
                          std::span<const std::int8_t> activations);

/**
 * Bit-serial with zero-bit skipping (Eq. 2): for each significance, add the
 * activations whose weight bit is one. The MSB column carries negative
 * significance (two's complement).
 */
std::int64_t dotBitSerialZeroSkip(std::span<const std::int8_t> weights,
                                  std::span<const std::int8_t> activations);

/** Work/result of a BBS bit-serial execution. */
struct BbsDotResult
{
    std::int64_t value = 0;
    /** Effectual bit operations performed (<= half the total bits). */
    std::int64_t effectualOps = 0;
    /** Columns where ones dominated and the vector was inverted (Eq. 3). */
    int invertedColumns = 0;
};

/**
 * Bit-serial with bi-directional skipping: per column, whichever of
 * {ones, zeros} is fewer is processed; when zeros are processed the column
 * contribution is sumA minus the partial sum (Eq. 3).
 */
BbsDotResult dotBitSerialBbs(std::span<const std::int8_t> weights,
                             std::span<const std::int8_t> activations);

/**
 * Compressed-domain dot product against a BBS-compressed group: the stored
 * columns run bit-serially (with BBS skipping) at significances shifted by
 * the pruned-column count, and the pruned columns contribute
 * constant * sumA in one multiplier step (PE Fig 7 step 4).
 *
 * Exactly equals dotReference(cg.decompress(), activations).
 */
BbsDotResult dotCompressed(const CompressedGroup &cg,
                           std::span<const std::int8_t> activations);

/**
 * Per-element reference implementations of the packed kernels above.
 * The default entry points pack the weight group into bit planes
 * (core/bitplane.hpp) and gather only effectual members; these scalar
 * forms preserve the original element-wise loops, and the test suite pins
 * value, effectualOps and invertedColumns of both paths to be identical.
 */
std::int64_t
dotBitSerialZeroSkipScalar(std::span<const std::int8_t> weights,
                           std::span<const std::int8_t> activations);
BbsDotResult dotBitSerialBbsScalar(std::span<const std::int8_t> weights,
                                   std::span<const std::int8_t> activations);
BbsDotResult dotCompressedScalar(const CompressedGroup &cg,
                                 std::span<const std::int8_t> activations);

} // namespace bbs

#endif // BBS_CORE_BBS_DOT_HPP
