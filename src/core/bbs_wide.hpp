/**
 * @file
 * Precision-generalized BBS (the paper's §VI claim: "BBS naturally exists
 * in a bit-vector with arbitrary length and does not depend on the operand
 * precision"). These functions operate on 16-bit operands at any declared
 * precision and carry the same >= 50% guarantee; tests sweep precisions.
 */
#ifndef BBS_CORE_BBS_WIDE_HPP
#define BBS_CORE_BBS_WIDE_HPP

#include <cstdint>
#include <span>

namespace bbs {

/**
 * BBS sparsity of @p bits-bit two's-complement values over bit vectors of
 * @p vectorSize values: mean of max(ones, zeros)/n per column. >= 0.5.
 */
double bbsSparsityWide(std::span<const std::int16_t> values, int bits,
                       std::int64_t vectorSize = 8);

/** Zero-bit (two's complement) sparsity at @p bits precision. */
double bitSparsityWide(std::span<const std::int16_t> values, int bits);

/**
 * Bi-directional bit-serial dot product at @p bits precision; exact
 * against the arithmetic reference for any precision 2..16.
 */
std::int64_t dotBitSerialBbsWide(std::span<const std::int16_t> weights,
                                 std::span<const std::int32_t> activations,
                                 int bits);

} // namespace bbs

#endif // BBS_CORE_BBS_WIDE_HPP
