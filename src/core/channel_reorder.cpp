#include "core/channel_reorder.hpp"

#include "common/logging.hpp"

namespace bbs {

ChannelOrder
buildChannelOrder(const std::vector<bool> &sensitive)
{
    ChannelOrder order;
    std::int64_t n = static_cast<std::int64_t>(sensitive.size());
    order.originalIndex.reserve(static_cast<std::size_t>(n));
    // Sensitive (8-bit) chunk first, then the pruned chunk.
    for (std::int64_t k = 0; k < n; ++k)
        if (sensitive[static_cast<std::size_t>(k)])
            order.originalIndex.push_back(k);
    order.sensitiveCount =
        static_cast<std::int64_t>(order.originalIndex.size());
    for (std::int64_t k = 0; k < n; ++k)
        if (!sensitive[static_cast<std::size_t>(k)])
            order.originalIndex.push_back(k);

    order.reorderedPosition.resize(static_cast<std::size_t>(n));
    for (std::int64_t p = 0; p < n; ++p)
        order.reorderedPosition[static_cast<std::size_t>(
            order.originalIndex[static_cast<std::size_t>(p)])] = p;
    return order;
}

Int8Tensor
reorderChannels(const Int8Tensor &weights, const ChannelOrder &order)
{
    std::int64_t channels = weights.shape().dim(0);
    BBS_REQUIRE(static_cast<std::int64_t>(order.originalIndex.size()) ==
                    channels,
                "order size mismatch");
    Int8Tensor out(weights.shape());
    for (std::int64_t p = 0; p < channels; ++p) {
        auto src = weights.channel(
            order.originalIndex[static_cast<std::size_t>(p)]);
        auto dst = out.channel(p);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    return out;
}

namespace {

template <typename T>
Tensor<T>
unshuffleImpl(const Tensor<T> &output, const ChannelOrder &order)
{
    std::int64_t channels = output.shape().dim(0);
    BBS_REQUIRE(static_cast<std::int64_t>(order.originalIndex.size()) ==
                    channels,
                "order size mismatch");
    Tensor<T> out(output.shape());
    for (std::int64_t p = 0; p < channels; ++p) {
        auto src = output.channel(p);
        auto dst = out.channel(
            order.originalIndex[static_cast<std::size_t>(p)]);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    return out;
}

} // namespace

FloatTensor
unshuffleOutput(const FloatTensor &output, const ChannelOrder &order)
{
    return unshuffleImpl(output, order);
}

Int32Tensor
unshuffleOutput(const Int32Tensor &output, const ChannelOrder &order)
{
    return unshuffleImpl(output, order);
}

} // namespace bbs
