#include "core/group_compressor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"
#include "core/bitplane.hpp"

namespace bbs {

const char *
pruneStrategyName(PruneStrategy s)
{
    switch (s) {
      case PruneStrategy::RoundedAveraging:
        return "rounded-averaging";
      case PruneStrategy::ZeroPointShifting:
        return "zero-point-shifting";
    }
    return "?";
}

std::uint8_t
GroupMetadata::pack(PruneStrategy strategy) const
{
    BBS_ASSERT(numRedundantColumns >= 0 &&
               numRedundantColumns <= kMaxRedundantColumns);
    std::uint32_t c;
    if (strategy == PruneStrategy::RoundedAveraging) {
        BBS_ASSERT(constant >= 0 && constant < 64);
        c = static_cast<std::uint32_t>(constant);
    } else {
        BBS_ASSERT(constant >= -32 && constant <= 31);
        c = static_cast<std::uint32_t>(constant) & 0x3fu;
    }
    return static_cast<std::uint8_t>(
        (static_cast<std::uint32_t>(numRedundantColumns) << 6) | c);
}

GroupMetadata
GroupMetadata::unpack(std::uint8_t byte, PruneStrategy strategy)
{
    GroupMetadata m;
    m.numRedundantColumns = (byte >> 6) & 0x3;
    std::uint32_t c = byte & 0x3fu;
    if (strategy == PruneStrategy::RoundedAveraging) {
        m.constant = static_cast<std::int32_t>(c);
    } else {
        m.constant = signExtend(c, kConstantBits);
    }
    return m;
}

std::vector<std::int8_t>
CompressedGroup::decompress() const
{
    std::vector<std::int8_t> out(stored.size());
    for (std::size_t i = 0; i < stored.size(); ++i) {
        std::int32_t v =
            (static_cast<std::int32_t>(stored[i]) << prunedColumns) +
            meta.constant;
        BBS_ASSERT(v >= -128 && v <= 127,
                   "decompressed value out of INT8 range: ", v);
        out[i] = static_cast<std::int8_t>(v);
    }
    return out;
}

std::int64_t
CompressedGroup::storageBits() const
{
    return static_cast<std::int64_t>(stored.size()) * storedBits + 8;
}

namespace {

/**
 * Round @p v to the nearest multiple of 2^k such that (a) the stored value
 * v/2^k fits in @p storedBits signed bits and (b) the reconstructed value
 * multiple + constant stays within INT8. Returns the chosen multiple.
 */
std::int32_t
roundToStorableMultiple(std::int32_t v, int k, int storedBits,
                        std::int32_t constant)
{
    std::int32_t step = 1 << k;
    std::int32_t storedLo = -(1 << (storedBits - 1));
    std::int32_t storedHi = (1 << (storedBits - 1)) - 1;

    auto valid = [&](std::int32_t mult) {
        std::int32_t s = mult >> k;
        if (s < storedLo || s > storedHi)
            return false;
        std::int32_t rec = mult + constant;
        return rec >= -128 && rec <= 127;
    };

    // Floor toward negative infinity so the division matches arithmetic
    // right shift.
    std::int32_t fl = (v >> k) << k;
    std::int32_t ce = fl + step;

    bool flOk = valid(fl);
    bool ceOk = valid(ce);
    if (flOk && ceOk)
        return (v - fl <= ce - v) ? fl : ce;
    if (flOk)
        return fl;
    if (ceOk)
        return ce;

    // Both candidates invalid (v far outside the storable range): clamp to
    // the nearest storable multiple that reconstructs in range.
    for (std::int32_t s = storedHi; s >= storedLo; --s) {
        std::int32_t mult = s << k;
        std::int32_t rec = mult + constant;
        if (rec >= -128 && rec <= 127) {
            if (mult <= v)
                return mult;
            // Keep searching for a closer one below; remember the smallest
            // valid above.
        }
    }
    // Fall back to the lowest valid multiple.
    for (std::int32_t s = storedLo; s <= storedHi; ++s) {
        std::int32_t mult = s << k;
        std::int32_t rec = mult + constant;
        if (rec >= -128 && rec <= 127)
            return mult;
    }
    BBS_PANIC("no storable multiple exists (k=", k, ", storedBits=",
              storedBits, ", constant=", constant, ")");
}

/** Redundant-column count capped by both the metadata field and target. */
int
cappedRedundantColumns(const PackedGroup &pg, int target)
{
    int r = countRedundantColumnsPacked(pg, kMaxRedundantColumns);
    return std::min(r, target);
}

} // namespace

CompressedGroup
compressGroupRoundedAveraging(std::span<const std::int8_t> group,
                              int targetColumns)
{
    BBS_REQUIRE(targetColumns >= 0 && targetColumns <= kMaxPrunedColumns,
                "target columns must be 0..", kMaxPrunedColumns);
    BBS_REQUIRE(group.size() >= 1 && group.size() <= 64,
                "group size must be 1..64");

    CompressedGroup cg;
    PackedGroup pg = packGroup(group);
    int r = cappedRedundantColumns(pg, targetColumns);
    int k = targetColumns - r;
    cg.meta.numRedundantColumns = r;
    cg.prunedColumns = k;
    cg.storedBits = kWeightBits - r - k;

    // Rounded average of the k low bits across the group (Fig 4 step 2),
    // from per-plane popcounts: sum_i (w_i & mask) = sum_b 2^b * ones_b.
    std::int32_t constant = 0;
    if (k > 0) {
        std::int32_t mask = (1 << k) - 1;
        std::int64_t sum = 0;
        for (int b = 0; b < k; ++b)
            sum += static_cast<std::int64_t>(packedColumnOnes(pg, b)) << b;
        constant = static_cast<std::int32_t>(std::nearbyint(
            static_cast<double>(sum) /
            static_cast<double>(group.size())));
        constant = std::clamp(constant, 0, mask);
    }
    cg.meta.constant = constant;

    cg.stored.resize(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
        // High bits unchanged (arithmetic shift); low bits become the
        // constant. Redundancy of the original group guarantees the shifted
        // value fits in storedBits.
        std::int32_t s = static_cast<std::int32_t>(group[i]) >> k;
        cg.stored[i] = static_cast<std::int8_t>(s);
    }
    return cg;
}

CompressedGroup
compressGroupZeroPointShifting(std::span<const std::int8_t> group,
                               int targetColumns, int constantBits)
{
    BBS_REQUIRE(targetColumns >= 0 && targetColumns <= kMaxPrunedColumns,
                "target columns must be 0..", kMaxPrunedColumns);
    BBS_REQUIRE(group.size() >= 1 && group.size() <= 64,
                "group size must be 1..64");
    BBS_REQUIRE(constantBits >= 1 && constantBits <= kConstantBits,
                "constant precision must be 1..", kConstantBits);

    CompressedGroup best;
    double bestSse = std::numeric_limits<double>::infinity();
    std::vector<std::int8_t> shifted(group.size());

    // Algorithm 1: exhaustive search over the constant space. We store
    // the *reconstruction* constant -shift, so the shift range is
    // [-(2^(p-1) - 1), 2^(p-1)] (the same 2^p-candidate space as the
    // paper's [-2^(p-1), 2^(p-1) - 1]).
    std::int32_t half = 1 << (constantBits - 1);
    for (std::int32_t shift = -(half - 1); shift <= half; ++shift) {
        std::int32_t constant = -shift;

        // Line 4: add the constant and clip to INT8.
        for (std::size_t i = 0; i < group.size(); ++i) {
            std::int32_t v = static_cast<std::int32_t>(group[i]) + shift;
            shifted[i] = static_cast<std::int8_t>(
                std::clamp(v, -128, 127));
        }

        // Lines 5-8: redundant columns, then zero the low columns with
        // per-weight nearest-multiple rounding.
        int r = cappedRedundantColumns(packGroup(shifted), targetColumns);
        int k = targetColumns - r;
        int storedBits = kWeightBits - r - k;

        CompressedGroup cand;
        cand.meta.numRedundantColumns = r;
        cand.meta.constant = constant;
        cand.prunedColumns = k;
        cand.storedBits = storedBits;
        cand.stored.resize(group.size());

        double sse = 0.0;
        for (std::size_t i = 0; i < group.size(); ++i) {
            std::int32_t mult = roundToStorableMultiple(
                static_cast<std::int32_t>(shifted[i]), k, storedBits,
                constant);
            cand.stored[i] = static_cast<std::int8_t>(mult >> k);
            double err = static_cast<double>(mult + constant) -
                         static_cast<double>(group[i]);
            sse += err * err;
            if (sse >= bestSse)
                break; // early exit: cannot beat the incumbent
        }

        if (sse < bestSse) {
            bestSse = sse;
            best = std::move(cand);
        }
    }
    return best;
}

CompressedGroup
compressGroup(std::span<const std::int8_t> group, int targetColumns,
              PruneStrategy strategy)
{
    return strategy == PruneStrategy::RoundedAveraging
               ? compressGroupRoundedAveraging(group, targetColumns)
               : compressGroupZeroPointShifting(group, targetColumns);
}

double
groupSse(std::span<const std::int8_t> group, const CompressedGroup &cg)
{
    BBS_REQUIRE(group.size() == cg.stored.size(), "group size mismatch");
    std::vector<std::int8_t> rec = cg.decompress();
    double sse = 0.0;
    for (std::size_t i = 0; i < group.size(); ++i) {
        double d = static_cast<double>(rec[i]) -
                   static_cast<double>(group[i]);
        sse += d * d;
    }
    return sse;
}

} // namespace bbs
