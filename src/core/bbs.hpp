/**
 * @file
 * Bi-directional bit-level sparsity (BBS) measurement — the paper's §III-A.
 *
 * For a bit vector (one bit significance across a group of weights), BBS
 * treats whichever of {zeros, ones} occurs more often as the sparse symbol,
 * so any vector is at least 50 % sparse (Eq. 2/3). These functions measure
 * the inherent sparsity of quantized weight tensors for the paper's Fig 3.
 */
#ifndef BBS_CORE_BBS_HPP
#define BBS_CORE_BBS_HPP

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace bbs {

/** Fraction of zero bits in the two's-complement encoding of all weights. */
double bitSparsityTwosComplement(const Int8Tensor &codes);

/** Fraction of zero bits in the sign-magnitude encoding of all weights. */
double bitSparsitySignMagnitude(const Int8Tensor &codes);

/**
 * BBS sparsity of a tensor: bit vectors of @p vectorSize weights are formed
 * per bit significance, and each vector's sparsity is
 * max(zeros, ones) / vectorSize. Always >= 0.5.
 *
 * Implemented over packed bit planes (core/bitplane.hpp); the per-element
 * scalar form is kept as @ref bbsSparsityScalar, and the test suite pins
 * the two to the same result.
 */
double bbsSparsity(const Int8Tensor &codes, std::int64_t vectorSize = 8);

/** Per-element reference implementation of bbsSparsity (for tests/bench). */
double bbsSparsityScalar(const Int8Tensor &codes,
                         std::int64_t vectorSize = 8);

/** BBS sparsity of a single group across all 8 significances. */
double bbsSparsityGroup(std::span<const std::int8_t> group);

/**
 * Per-column effectual-bit count distribution of a tensor under plain
 * zero-bit skipping vs BBS skipping. Used for load-imbalance analysis:
 * the imbalance of a bit-serial array is driven by the spread of these
 * counts across concurrently processed vectors.
 */
struct EffectualBitStats
{
    double meanZeroSkip = 0.0; ///< mean ones per column (zero-skip work)
    double maxZeroSkip = 0.0;  ///< max ones per column
    double meanBbs = 0.0;      ///< mean min(ones, zeros) per column
    double maxBbs = 0.0;       ///< max min(ones, zeros) per column
};

EffectualBitStats effectualBitStats(const Int8Tensor &codes,
                                    std::int64_t vectorSize = 8);

} // namespace bbs

#endif // BBS_CORE_BBS_HPP
