/**
 * @file
 * Whole-tensor BBS compression: contiguous groups of weights are compressed
 * with binary pruning and the BBS encoding; the compressed form can be
 * decompressed, sized, and executed against directly (see bbs_dot.hpp).
 */
#ifndef BBS_CORE_COMPRESSED_TENSOR_HPP
#define BBS_CORE_COMPRESSED_TENSOR_HPP

#include <cstdint>
#include <vector>

#include "core/bitplane.hpp"
#include "core/group_compressor.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/**
 * A BBS-compressed weight tensor.
 *
 * Groups are formed over the flattened row-major order, so a group never
 * spans two output channels as long as the channel size is a multiple of
 * the group size (true for every layer in the paper's models at group 32).
 */
class CompressedTensor
{
  public:
    CompressedTensor() = default;

    const Shape &shape() const { return shape_; }
    std::int64_t groupSize() const { return groupSize_; }
    PruneStrategy strategy() const { return strategy_; }
    int targetColumns() const { return targetColumns_; }

    const std::vector<CompressedGroup> &groups() const { return groups_; }
    const CompressedGroup &group(std::int64_t g) const
    {
        return groups_[static_cast<std::size_t>(g)];
    }

    /**
     * Packed bit planes of each group's stored values (built once at
     * compress time). Plane b of entry g is stored column b of group g —
     * the layout the serializer and the compressed-domain dot consume.
     */
    const std::vector<PackedGroup> &packedGroups() const { return packed_; }
    const PackedGroup &packedGroup(std::int64_t g) const
    {
        return packed_[static_cast<std::size_t>(g)];
    }

    /** Reconstruct the full INT8 tensor. */
    Int8Tensor decompress() const;

    /** Total storage including metadata, in bits. */
    std::int64_t storageBits() const;

    /** Mean storage per weight, in bits (paper's "effective bit width"). */
    double effectiveBitsPerWeight() const;

    /**
     * Compress @p codes with @p targetColumns pruned per group.
     * @param codes          INT8 weight codes
     * @param groupSize      weights per group (32 in the paper)
     * @param targetColumns  bit columns to prune (0..6)
     * @param strategy       binary-pruning strategy
     */
    static CompressedTensor compress(const Int8Tensor &codes,
                                     std::int64_t groupSize,
                                     int targetColumns,
                                     PruneStrategy strategy);

  private:
    Shape shape_;
    std::int64_t groupSize_ = 32;
    PruneStrategy strategy_ = PruneStrategy::RoundedAveraging;
    int targetColumns_ = 0;
    std::vector<CompressedGroup> groups_;
    std::vector<PackedGroup> packed_;
};

/**
 * Convenience: compress and immediately decompress ("fake compression"),
 * producing the INT8 tensor a BitVert run would effectively compute with.
 */
Int8Tensor binaryPruneTensor(const Int8Tensor &codes, std::int64_t groupSize,
                             int targetColumns, PruneStrategy strategy);

} // namespace bbs

#endif // BBS_CORE_COMPRESSED_TENSOR_HPP
