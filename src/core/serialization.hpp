/**
 * @file
 * Bit-exact serialization of BBS-compressed tensors into the memory layout
 * the BitVert accelerator streams from DRAM (§IV, Fig 9(a)):
 *
 *   [header][metadata bytes, one per group][column-serial payload]
 *
 * The payload stores each group's surviving bit columns *column-serial*
 * (all weights' bit b, then bit b-1, ...), because that is the order the
 * PE consumes them in — one column per cycle. Groups are byte-aligned so
 * the scheduler can index them without carrying bit offsets across groups.
 */
#ifndef BBS_CORE_SERIALIZATION_HPP
#define BBS_CORE_SERIALIZATION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/compressed_tensor.hpp"

namespace bbs {

/** Serialized blob plus layout info. */
struct SerializedTensor
{
    std::vector<std::uint8_t> bytes;

    /** Offset of each group's payload within bytes (for random access). */
    std::vector<std::uint32_t> groupOffsets;
};

/** Serialize a compressed tensor into the BitVert memory layout. */
SerializedTensor serializeCompressed(const CompressedTensor &ct);

/**
 * Deserialize back. The shape/group-size/strategy/target are external
 * parameters (they live in the layer descriptor, not the weight stream,
 * exactly as in the hardware).
 */
CompressedTensor deserializeCompressed(const SerializedTensor &blob,
                                       const Shape &shape,
                                       std::int64_t groupSize,
                                       int targetColumns,
                                       PruneStrategy strategy);

/**
 * Non-fatal deserializeCompressed: runs the same untrusted-blob
 * validation chain but reports a malformed blob by returning false
 * (with a diagnostic in @p error when non-null) instead of terminating
 * the process. The fatal form above wraps this one. Use this wherever
 * a bad blob is an EXPECTED runtime condition — a server rejecting a
 * corrupt model upload, the soak harness's fault injection — rather
 * than a deployment error.
 */
bool tryDeserializeCompressed(const SerializedTensor &blob,
                              const Shape &shape, std::int64_t groupSize,
                              int targetColumns, PruneStrategy strategy,
                              CompressedTensor &out,
                              std::string *error = nullptr);

/** Serialized size in bytes (header + metadata + payload). */
std::int64_t serializedBytes(const CompressedTensor &ct);

} // namespace bbs

#endif // BBS_CORE_SERIALIZATION_HPP
