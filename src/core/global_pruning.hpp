/**
 * @file
 * Hardware-aware global binary pruning (the paper's Algorithm 2, §III-C).
 *
 * Channels are ranked globally by their per-channel quantization scale
 * factor (a magnitude proxy for pruning sensitivity); the top beta fraction
 * stays at full 8-bit precision, rounded up per layer to a multiple of the
 * number of channels the accelerator processes in parallel (CH = 32 for
 * BitVert); the remaining channels are binary-pruned.
 */
#ifndef BBS_CORE_GLOBAL_PRUNING_HPP
#define BBS_CORE_GLOBAL_PRUNING_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/compressed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/** One quantized layer as seen by the pruner. */
struct PrunableLayer
{
    std::string name;
    Int8Tensor codes;          ///< INT8 codes, dim 0 = output channels
    std::vector<float> scales; ///< per-channel quantization scales
};

/** Configuration of Algorithm 2. */
struct GlobalPruneConfig
{
    /** Minimum fraction of sensitive channels kept at 8 bits (beta). */
    double beta = 0.1;
    /** Channels processed in parallel by the accelerator (CH). */
    int channelsParallel = 32;
    /** BBS weight group size. */
    std::int64_t groupSize = 32;
    /** Bit columns pruned per group in normal channels. */
    int targetColumns = 2;
    /** Binary-pruning strategy for normal channels. */
    PruneStrategy strategy = PruneStrategy::RoundedAveraging;
};

/** The paper's two evaluated operating points (§V-A). */
GlobalPruneConfig conservativeConfig();
GlobalPruneConfig moderateConfig();

/** Per-layer result of global pruning. */
struct PrunedLayer
{
    std::string name;
    Int8Tensor codes;            ///< pruned codes (sensitive untouched)
    std::vector<bool> sensitive; ///< per-channel sensitivity flags
    std::int64_t storageBits = 0;

    int numSensitive() const;
    double effectiveBits() const;
};

/** Whole-model result. */
struct PrunedModel
{
    std::vector<PrunedLayer> layers;

    /** Memory-footprint reduction vs. 8-bit baseline. */
    double compressionRatio() const;
    double effectiveBits() const;
};

/**
 * Algorithm 2: global channel sorting, per-layer sensitive-channel rounding
 * to a multiple of CH, binary pruning of the remaining channels.
 */
PrunedModel globalBinaryPrune(const std::vector<PrunableLayer> &model,
                              const GlobalPruneConfig &cfg);

/**
 * Select the per-layer sensitive channel sets without modifying weights
 * (lines 1-9 of Algorithm 2). Exposed for tests and for the simulator,
 * which needs the precision split but not the pruned codes.
 */
std::vector<std::vector<bool>>
selectSensitiveChannels(const std::vector<PrunableLayer> &model,
                        double beta, int channelsParallel);

} // namespace bbs

#endif // BBS_CORE_GLOBAL_PRUNING_HPP
