/**
 * @file
 * Bit-level binary pruning of one weight group (the paper's §III-B):
 * redundant-column removal, *rounded column averaging* (Fig 4) and
 * *zero-point shifting* (Fig 5 / Algorithm 1), plus the BBS compression
 * encoding (one metadata byte per group: 2-bit redundant-column count and
 * 6-bit BBS constant).
 */
#ifndef BBS_CORE_GROUP_COMPRESSOR_HPP
#define BBS_CORE_GROUP_COMPRESSOR_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace bbs {

/** Binary-pruning strategy (paper §III-B). */
enum class PruneStrategy
{
    RoundedAveraging,  ///< replace low columns with the group's rounded mean
    ZeroPointShifting, ///< shift the zero point, then zero the low columns
};

const char *pruneStrategyName(PruneStrategy s);

/** Maximum redundant columns the 2-bit metadata field can express. */
inline constexpr int kMaxRedundantColumns = 3;

/** Width of the BBS-constant metadata field in bits. */
inline constexpr int kConstantBits = 6;

/** Maximum bit columns binary pruning may remove (§III-B encoding). */
inline constexpr int kMaxPrunedColumns = 6;

/**
 * Per-group BBS encoding metadata. The on-disk/on-wire form is one byte:
 * bits [7:6] hold the redundant-column count, bits [5:0] the constant.
 *
 * The constant's interpretation depends on the strategy (a per-tensor, not
 * per-group, property): for rounded averaging it is the unsigned low-bits
 * average in [0, 2^k); for zero-point shifting it is the signed negated
 * shift in [-32, 31]. Reconstruction is identical for both:
 *   w = (stored << prunedColumns) + constant.
 */
struct GroupMetadata
{
    int numRedundantColumns = 0; ///< 0..3
    std::int32_t constant = 0;   ///< see interpretation above

    /** Pack into the 8-bit encoding. */
    std::uint8_t pack(PruneStrategy strategy) const;

    /** Unpack from the 8-bit encoding. */
    static GroupMetadata unpack(std::uint8_t byte, PruneStrategy strategy);
};

/**
 * One compressed weight group: the metadata plus the surviving high-order
 * bit columns of every weight (held as sign-extended integers of
 * @ref storedBits bits each).
 */
struct CompressedGroup
{
    GroupMetadata meta;
    int prunedColumns = 0; ///< k: low columns averaged/zeroed
    int storedBits = 8;    ///< 8 - numRedundantColumns - prunedColumns
    std::vector<std::int8_t> stored;

    /** Reconstruct the group's INT8 weights. */
    std::vector<std::int8_t> decompress() const;

    /** Payload bits: storedBits per weight plus the metadata byte. */
    std::int64_t storageBits() const;
};

/**
 * Compress a group with rounded column averaging (Fig 4).
 *
 * @param group          weight group (up to 64 values)
 * @param targetColumns  total columns to prune, 0..6; redundant columns
 *                       count toward the target for free
 */
CompressedGroup
compressGroupRoundedAveraging(std::span<const std::int8_t> group,
                              int targetColumns);

/**
 * Compress a group with zero-point shifting (Algorithm 1): search the
 * 2^constantBits candidate shifts exhaustively and keep the minimum-MSE
 * result.
 *
 * @param constantBits  precision of the BBS constant (6 in the shipped
 *                      encoding; exposed for the design-choice ablation)
 */
CompressedGroup
compressGroupZeroPointShifting(std::span<const std::int8_t> group,
                               int targetColumns,
                               int constantBits = kConstantBits);

/** Dispatch on strategy. */
CompressedGroup compressGroup(std::span<const std::int8_t> group,
                              int targetColumns, PruneStrategy strategy);

/** Sum of squared errors between a group and its compressed form. */
double groupSse(std::span<const std::int8_t> group,
                const CompressedGroup &cg);

} // namespace bbs

#endif // BBS_CORE_GROUP_COMPRESSOR_HPP
