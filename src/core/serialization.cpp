#include "core/serialization.hpp"

#include "common/bit_utils.hpp"
#include "common/logging.hpp"
#include "core/bitplane.hpp"

namespace bbs {

namespace {

/** Append one bit column (n bits, LSB-first) to a byte stream. */
void
appendColumn(std::vector<std::uint8_t> &bytes, std::uint64_t &bitBuf,
             int &bitCount, BitColumn col, int n)
{
    for (int i = 0; i < n; ++i) {
        bitBuf |= static_cast<std::uint64_t>((col >> i) & 1ull)
                  << bitCount;
        if (++bitCount == 8) {
            bytes.push_back(static_cast<std::uint8_t>(bitBuf));
            bitBuf = 0;
            bitCount = 0;
        }
    }
}

void
flushBits(std::vector<std::uint8_t> &bytes, std::uint64_t &bitBuf,
          int &bitCount)
{
    if (bitCount > 0) {
        bytes.push_back(static_cast<std::uint8_t>(bitBuf));
        bitBuf = 0;
        bitCount = 0;
    }
}

} // namespace

SerializedTensor
serializeCompressed(const CompressedTensor &ct)
{
    SerializedTensor out;
    const auto &groups = ct.groups();

    // Header: group count (4 bytes, little endian).
    std::uint32_t numGroups = static_cast<std::uint32_t>(groups.size());
    for (int i = 0; i < 4; ++i)
        out.bytes.push_back(
            static_cast<std::uint8_t>((numGroups >> (8 * i)) & 0xff));

    // Metadata region: one packed byte per group.
    for (const CompressedGroup &g : groups)
        out.bytes.push_back(g.meta.pack(ct.strategy()));

    // Payload: column-serial bits, most-significant stored column first
    // (the PE consumes columns from the MSB down), byte-aligned per group.
    // Columns come straight from the tensor's packed bit planes.
    const auto &packed = ct.packedGroups();
    out.groupOffsets.reserve(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const CompressedGroup &g = groups[gi];
        const PackedGroup &pg = packed[gi];
        out.groupOffsets.push_back(
            static_cast<std::uint32_t>(out.bytes.size()));
        std::uint64_t bitBuf = 0;
        int bitCount = 0;
        int n = static_cast<int>(g.stored.size());
        for (int b = g.storedBits - 1; b >= 0; --b) {
            appendColumn(out.bytes, bitBuf, bitCount,
                         pg.planes[static_cast<std::size_t>(b)], n);
        }
        flushBits(out.bytes, bitBuf, bitCount);
    }
    return out;
}

namespace {

/** Set @p error (when requested) from streamable parts; always false. */
template <typename... Args>
bool
blobError(std::string *error, Args &&...args)
{
    if (error != nullptr)
        *error = bbs::detail::concatMessage(std::forward<Args>(args)...);
    return false;
}

} // namespace

bool
tryDeserializeCompressed(const SerializedTensor &blob, const Shape &shape,
                         std::int64_t groupSize, int targetColumns,
                         PruneStrategy strategy, CompressedTensor &out,
                         std::string *error)
{
    if (blob.bytes.size() < 4)
        return blobError(error, "blob too small");
    std::uint32_t numGroups = 0;
    for (int i = 0; i < 4; ++i)
        numGroups |= static_cast<std::uint32_t>(blob.bytes[
                         static_cast<std::size_t>(i)])
                     << (8 * i);
    if (blob.groupOffsets.size() != numGroups)
        return blobError(error, "group offset table size mismatch");

    // Rebuild group by group, then round-trip through an Int8Tensor of
    // the decompressed codes: since compression of a reconstruction is
    // lossless (tested), recompressing yields the identical structure.
    // The blob is untrusted (it is the deployment wire format): pin the
    // group count to the shape, the metadata table to the byte range,
    // and the encoding fields to their legal ranges before any indexing.
    if (groupSize < 1 || groupSize > 64)
        return blobError(error, "corrupt blob: bad group size");
    if (targetColumns < 0 || targetColumns > kMaxPrunedColumns)
        return blobError(error, "corrupt blob: bad target columns");
    std::int64_t expectGroups =
        (shape.numel() + groupSize - 1) / groupSize;
    if (static_cast<std::int64_t>(numGroups) != expectGroups)
        return blobError(error, "corrupt blob: ", numGroups,
                         " groups, shape needs ", expectGroups);
    if (4 + static_cast<std::size_t>(numGroups) > blob.bytes.size())
        return blobError(error, "corrupt blob: metadata table truncated");
    Int8Tensor codes(shape);
    std::size_t metaBase = 4;
    for (std::uint32_t g = 0; g < numGroups; ++g) {
        GroupMetadata meta = GroupMetadata::unpack(
            blob.bytes[metaBase + g], strategy);
        std::int64_t begin = static_cast<std::int64_t>(g) * groupSize;
        std::int64_t end =
            std::min<std::int64_t>(begin + groupSize, shape.numel());
        int n = static_cast<int>(end - begin);
        int prunedColumns = targetColumns - meta.numRedundantColumns;
        // Genuine encodings never claim more redundant columns than the
        // pruning target absorbed; a negative shift would be UB below.
        if (prunedColumns < 0)
            return blobError(error, "corrupt blob: group ", g,
                             " metadata inconsistent");
        int storedBits = kWeightBits - targetColumns;

        // Read column-serial bits back (MSB column first). The blob is
        // untrusted: bound the group's payload before indexing into it.
        std::size_t byteOff = blob.groupOffsets[g];
        std::size_t needed =
            (static_cast<std::size_t>(storedBits) *
                 static_cast<std::size_t>(n) +
             7) /
            8;
        if (byteOff > blob.bytes.size() ||
            needed > blob.bytes.size() - byteOff)
            return blobError(error, "corrupt blob: group ", g,
                             " payload truncated");
        int bitOff = 0;
        std::vector<std::uint32_t> stored(static_cast<std::size_t>(n), 0);
        for (int b = storedBits - 1; b >= 0; --b) {
            for (int i = 0; i < n; ++i) {
                std::uint32_t bit =
                    (blob.bytes[byteOff] >> bitOff) & 1u;
                stored[static_cast<std::size_t>(i)] |= bit << b;
                if (++bitOff == 8) {
                    bitOff = 0;
                    ++byteOff;
                }
            }
        }

        for (int i = 0; i < n; ++i) {
            std::int32_t s = signExtend(
                stored[static_cast<std::size_t>(i)], storedBits);
            std::int32_t v = (s << prunedColumns) + meta.constant;
            if (v < -128 || v > 127)
                return blobError(error, "corrupt blob: value out of range");
            codes.flat(begin + i) = static_cast<std::int8_t>(v);
        }
    }
    out = CompressedTensor::compress(codes, groupSize, targetColumns,
                                     strategy);
    return true;
}

CompressedTensor
deserializeCompressed(const SerializedTensor &blob, const Shape &shape,
                      std::int64_t groupSize, int targetColumns,
                      PruneStrategy strategy)
{
    CompressedTensor out;
    std::string error;
    if (!tryDeserializeCompressed(blob, shape, groupSize, targetColumns,
                                  strategy, out, &error))
        BBS_FATAL(error);
    return out;
}

std::int64_t
serializedBytes(const CompressedTensor &ct)
{
    SerializedTensor s = serializeCompressed(ct);
    return static_cast<std::int64_t>(s.bytes.size());
}

} // namespace bbs
