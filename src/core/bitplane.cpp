#include "core/bitplane.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "simd/simd.hpp"

namespace bbs {

PackedGroup
packGroupSignMagnitude(std::span<const std::int8_t> group)
{
    BBS_ASSERT(group.size() <= 64);
    PackedGroup pg;
    pg.size = static_cast<int>(group.size());
    pg.bits = kWeightBits;
    for (std::size_t i = 0; i < group.size(); ++i) {
        std::uint32_t sm = toSignMagnitude(group[i]);
        for (int b = 0; b < kWeightBits; ++b)
            pg.planes[static_cast<std::size_t>(b)] |=
                static_cast<BitColumn>((sm >> b) & 1u) << i;
    }
    return pg;
}

void
unpackGroup(const PackedGroup &pg, std::span<std::int8_t> out)
{
    BBS_REQUIRE(static_cast<int>(out.size()) == pg.size,
                "unpack size mismatch");
    for (int i = 0; i < pg.size; ++i) {
        std::uint32_t v = 0;
        for (int b = 0; b < pg.bits; ++b)
            v |= static_cast<std::uint32_t>(
                     (pg.planes[static_cast<std::size_t>(b)] >> i) & 1ull)
                 << b;
        out[static_cast<std::size_t>(i)] =
            static_cast<std::int8_t>(signExtend(v, pg.bits));
    }
}

std::vector<std::int8_t>
unpackGroup(const PackedGroup &pg)
{
    std::vector<std::int8_t> out(static_cast<std::size_t>(pg.size));
    unpackGroup(pg, out);
    return out;
}

void
BitPlaneTensor::repack(std::span<const std::int8_t> values,
                       std::int64_t channels, std::int64_t groupSize)
{
    BBS_REQUIRE(groupSize >= 1 && groupSize <= 64,
                "group size must be 1..64, got ", groupSize);
    BitPlaneTensor &t = *this;
    t.groupSize_ = groupSize;
    t.channels_ = channels;
    t.channelSize_ =
        channels > 0 ? static_cast<std::int64_t>(values.size()) / channels
                     : 0;
    if (values.empty() || channels == 0) {
        t.numGroups_ = 0;
        t.groupsPerChannel_ = 0;
        t.tailSize_ = 0;
        t.words_.clear();
        return;
    }
    t.groupsPerChannel_ = (t.channelSize_ + groupSize - 1) / groupSize;
    t.numGroups_ = t.channels_ * t.groupsPerChannel_;
    std::int64_t tail =
        t.channelSize_ - (t.groupsPerChannel_ - 1) * groupSize;
    t.tailSize_ = static_cast<int>(tail);
    t.words_.assign(static_cast<std::size_t>(kWeightBits * t.numGroups_),
                    0ull);

    std::uint64_t *words = t.words_.data();
    std::int64_t numGroups = t.numGroups_;
    std::int64_t gpc = t.groupsPerChannel_;
    std::int64_t cs = t.channelSize_;
    const std::int8_t *data = values.data();
    parallelFor(t.channels_, [&](std::int64_t c) {
        const std::int8_t *ch = data + c * cs;
        for (std::int64_t i = 0; i < gpc; ++i) {
            std::int64_t begin = i * groupSize;
            std::int64_t len =
                std::min<std::int64_t>(groupSize, cs - begin);
            PackedGroup pg = packGroup(
                std::span<const std::int8_t>(
                    ch + begin, static_cast<std::size_t>(len)));
            std::int64_t g = c * gpc + i;
            for (int b = 0; b < kWeightBits; ++b)
                words[b * numGroups + g] =
                    pg.planes[static_cast<std::size_t>(b)];
        }
    });
}

BitPlaneTensor
BitPlaneTensor::pack(const Int8Tensor &codes, std::int64_t groupSize)
{
    std::int64_t channels =
        codes.shape().rank() >= 2 ? codes.shape().dim(0) : 1;
    BitPlaneTensor t;
    t.repack(codes.data(), channels, groupSize);
    return t;
}

BitPlaneTensor
BitPlaneTensor::pack(std::span<const std::int8_t> values,
                     std::int64_t groupSize)
{
    BitPlaneTensor t;
    t.repack(values, 1, groupSize);
    return t;
}

PackedGroup
BitPlaneTensor::group(std::int64_t g) const
{
    BBS_ASSERT(g >= 0 && g < numGroups_);
    PackedGroup pg;
    pg.size = groupMembers(g);
    pg.bits = kWeightBits;
    for (int b = 0; b < kWeightBits; ++b)
        pg.planes[static_cast<std::size_t>(b)] =
            words_[static_cast<std::size_t>(b * numGroups_ + g)];
    return pg;
}

std::int64_t
packedEffectualOpsTotal(const BitPlaneTensor &planes)
{
    if (planes.empty())
        return 0;
    std::int64_t ops = 0;
    std::int64_t groups = planes.numGroups();
    std::int64_t gpc = planes.groupsPerChannel();
    int full = static_cast<int>(planes.groupSize());
    int tail = planes.groupMembers(gpc - 1);
    const SimdKernels &simd = simdKernels();
    for (int b = 0; b < kWeightBits; ++b) {
        auto pl = planes.plane(b);
        if (tail == full) {
            // Uniform group size: one vectorized popcount+min scan.
            ops += simd.effectualOpsSum(pl.data(), groups, full);
        } else {
            // Channel-tail groups sit at a fixed stride: scan each
            // channel's full-size prefix, handle its tail word alone.
            for (std::int64_t c = 0; c < planes.numChannels(); ++c) {
                std::int64_t base = c * gpc;
                ops += simd.effectualOpsSum(pl.data() + base, gpc - 1,
                                            full);
                int ones = std::popcount(
                    pl[static_cast<std::size_t>(base + gpc - 1)]);
                ops += std::min(ones, tail - ones);
            }
        }
    }
    return ops;
}

} // namespace bbs
