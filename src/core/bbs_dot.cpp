/**
 * @file
 * Kernel implementations of the bit-serial dot forms declared in
 * core/dot_kernels.hpp. The engine facade (engine/session.cpp) is the
 * public route into these; the legacy free functions in bbs_dot.hpp are
 * compatibility wrappers over it.
 */
#include "core/dot_kernels.hpp"

#include "common/bit_utils.hpp"
#include "common/logging.hpp"
#include "core/bitplane.hpp"
#include "simd/simd.hpp"

namespace bbs {

namespace {

std::int64_t
sumActivations(std::span<const std::int8_t> activations)
{
    return simdKernels().byteSum(
        activations.data(),
        static_cast<std::int64_t>(activations.size()));
}

/**
 * BBS bit-serial dot over packed planes: per column, gather whichever of
 * {ones, zeros} is fewer (Eq. 2/3). Gathering iterates set bits only, so a
 * column costs its effectual bits instead of the full group size.
 */
BbsDotResult
dotPackedPlanes(const PackedGroup &pg,
                std::span<const std::int8_t> activations,
                std::int64_t sumA)
{
    BbsDotResult res;
    int n = pg.size;
    BitColumn m = pg.mask();
    for (int b = 0; b < pg.bits; ++b) {
        BitColumn col = pg.planes[static_cast<std::size_t>(b)];
        int ones = std::popcount(col);
        std::int64_t colSum;
        if (ones <= n - ones) {
            // Eq. 2: add activations at one-bits.
            colSum = gatherSum(col, activations);
            res.effectualOps += ones;
        } else {
            // Eq. 3: invert; subtract activations at zero-bits from sumA.
            colSum = sumA - gatherSum(~col & m, activations);
            res.effectualOps += n - ones;
            ++res.invertedColumns;
        }
        res.value += columnWeight(b, pg.bits) * colSum;
    }
    return res;
}

} // namespace

namespace detail {

std::int64_t
dotReferenceKernel(std::span<const std::int8_t> weights,
                   std::span<const std::int8_t> activations)
{
    BBS_REQUIRE(weights.size() == activations.size(),
                "dot operand size mismatch");
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < weights.size(); ++i)
        acc += static_cast<std::int64_t>(weights[i]) *
               static_cast<std::int64_t>(activations[i]);
    return acc;
}

std::int64_t
dotZeroSkipKernel(std::span<const std::int8_t> weights,
                  std::span<const std::int8_t> activations)
{
    BBS_REQUIRE(weights.size() == activations.size(),
                "dot operand size mismatch");
    PackedGroup pg = packGroup(weights);
    std::int64_t acc = 0;
    for (int b = 0; b < kWeightBits; ++b) {
        BitColumn col = pg.planes[static_cast<std::size_t>(b)];
        acc += columnWeight(b, kWeightBits) * gatherSum(col, activations);
    }
    return acc;
}

std::int64_t
dotZeroSkipScalarKernel(std::span<const std::int8_t> weights,
                        std::span<const std::int8_t> activations)
{
    BBS_REQUIRE(weights.size() == activations.size(),
                "dot operand size mismatch");
    std::int64_t acc = 0;
    for (int b = 0; b < kWeightBits; ++b) {
        std::int64_t colSum = 0;
        for (std::size_t i = 0; i < weights.size(); ++i)
            if (bitOf(weights[i], b))
                colSum += activations[i];
        acc += columnWeight(b, kWeightBits) * colSum;
    }
    return acc;
}

BbsDotResult
dotBbsKernel(std::span<const std::int8_t> weights,
             std::span<const std::int8_t> activations)
{
    BBS_REQUIRE(weights.size() == activations.size(),
                "dot operand size mismatch");
    return dotPackedPlanes(packGroup(weights), activations,
                           sumActivations(activations));
}

BbsDotResult
dotBbsScalarKernel(std::span<const std::int8_t> weights,
                   std::span<const std::int8_t> activations)
{
    BBS_REQUIRE(weights.size() == activations.size(),
                "dot operand size mismatch");
    BbsDotResult res;
    int n = static_cast<int>(weights.size());
    std::int64_t sumA = sumActivations(activations);

    for (int b = 0; b < kWeightBits; ++b) {
        BitColumn col = extractColumn(weights, b);
        int ones = columnPopcount(col, n);
        std::int64_t colSum;
        if (ones <= n - ones) {
            colSum = 0;
            for (int i = 0; i < n; ++i)
                if ((col >> i) & 1ull)
                    colSum += activations[static_cast<std::size_t>(i)];
            res.effectualOps += ones;
        } else {
            std::int64_t zeroSum = 0;
            for (int i = 0; i < n; ++i)
                if (!((col >> i) & 1ull))
                    zeroSum += activations[static_cast<std::size_t>(i)];
            colSum = sumA - zeroSum;
            res.effectualOps += n - ones;
            ++res.invertedColumns;
        }
        res.value += columnWeight(b, kWeightBits) * colSum;
    }
    return res;
}

BbsDotResult
dotCompressedPacked(const PackedGroup &pg, int prunedColumns,
                    std::int32_t constant,
                    std::span<const std::int8_t> activations)
{
    std::int64_t sumA = sumActivations(activations);

    // Surviving columns bit-serially with BBS skipping; their LSB sits at
    // significance prunedColumns of the reconstructed weight.
    BbsDotResult res = dotPackedPlanes(pg, activations, sumA);
    res.value <<= prunedColumns;

    // Pruned columns: the BBS multiplier computes constant * sumA
    // (PE Fig 7 step 4). The constant already encodes the reconstruction
    // offset for both strategies.
    res.value += static_cast<std::int64_t>(constant) * sumA;
    return res;
}

BbsDotResult
dotCompressedKernel(const CompressedGroup &cg,
                    std::span<const std::int8_t> activations)
{
    BBS_REQUIRE(cg.stored.size() == activations.size(),
                "dot operand size mismatch");
    return dotCompressedPacked(packGroup(cg.stored, cg.storedBits),
                               cg.prunedColumns, cg.meta.constant,
                               activations);
}

BbsDotResult
dotCompressedScalarKernel(const CompressedGroup &cg,
                          std::span<const std::int8_t> activations)
{
    BBS_REQUIRE(cg.stored.size() == activations.size(),
                "dot operand size mismatch");
    BbsDotResult res;
    int n = static_cast<int>(cg.stored.size());
    std::int64_t sumA = sumActivations(activations);

    for (int b = 0; b < cg.storedBits; ++b) {
        BitColumn col = extractColumn(cg.stored, b);
        int ones = columnPopcount(col, n);
        std::int64_t colSum;
        if (ones <= n - ones) {
            colSum = 0;
            for (int i = 0; i < n; ++i)
                if ((col >> i) & 1ull)
                    colSum += activations[static_cast<std::size_t>(i)];
            res.effectualOps += ones;
        } else {
            std::int64_t zeroSum = 0;
            for (int i = 0; i < n; ++i)
                if (!((col >> i) & 1ull))
                    zeroSum += activations[static_cast<std::size_t>(i)];
            colSum = sumA - zeroSum;
            res.effectualOps += n - ones;
            ++res.invertedColumns;
        }
        res.value += columnWeight(b, cg.storedBits) * colSum *
                     (1ll << cg.prunedColumns);
    }
    res.value += static_cast<std::int64_t>(cg.meta.constant) * sumA;
    return res;
}

} // namespace detail
} // namespace bbs
