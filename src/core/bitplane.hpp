/**
 * @file
 * Packed bit-plane substrate shared by the BBS kernels, the compressor and
 * every accelerator cycle model.
 *
 * A weight group of up to 64 INT8 values is packed once into eight
 * `uint64_t` bit planes (plane b holds bit significance b of every member,
 * member i at bit i — gemmbitserial-style `[significance][group]` layout).
 * All per-column questions the codebase asks — popcounts, BBS effectual
 * bits, redundant-column detection, zero-value counts — then become one or
 * two word operations instead of per-element loops, and bit-serial dot
 * products gather only the effectual members via count-trailing-zeros
 * iteration.
 *
 * `BitPlaneTensor` extends the same layout to a whole tensor: one plane
 * array per significance, one word per group, packed once and reused by
 * every consumer (sparsity measurement, all seven accelerator models).
 */
#ifndef BBS_CORE_BITPLANE_HPP
#define BBS_CORE_BITPLANE_HPP

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/bit_utils.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/**
 * Packed bit planes of one weight group (<= 64 members).
 *
 * planes[b] holds bit b of every member (member i at bit i). Invariants
 * every producer maintains (and the word-level primitives rely on): plane
 * bits at positions >= @ref size are zero, and planes at significances >=
 * @ref bits are zero. Two's-complement packing keeps the raw encoding
 * bits, so the MSB plane is the sign plane.
 *
 * The struct is cache-line aligned: the eight planes are exactly 64
 * bytes, so the compressed GEMM's one-vector load of a group's planes
 * never straddles two lines (rows of PackedGroup therefore cost a full
 * two lines each — the deliberate space-for-bandwidth trade).
 */
struct alignas(kCacheLineBytes) PackedGroup
{
    std::array<BitColumn, kWeightBits> planes{};
    int size = 0;          ///< members n, 0..64
    int bits = kWeightBits; ///< valid planes (stored columns)

    /** Mask of the low @ref size bits (needed when *inverting* a plane). */
    BitColumn
    mask() const
    {
        return size >= 64 ? ~0ull : ((1ull << size) - 1ull);
    }
};

namespace detail {

/**
 * Transpose an 8x8 bit matrix held as 8 little-endian byte rows: output
 * byte b, bit j == input byte j, bit b. Three delta-swaps (the classic
 * bitboard flip-diagonal), ~2 ops per packed byte.
 */
inline std::uint64_t
transpose8(std::uint64_t x)
{
    std::uint64_t t;
    constexpr std::uint64_t k1 = 0x5500550055005500ull;
    constexpr std::uint64_t k2 = 0x3333000033330000ull;
    constexpr std::uint64_t k4 = 0x0f0f0f0f00000000ull;
    t = k4 & (x ^ (x << 28));
    x ^= t ^ (t >> 28);
    t = k2 & (x ^ (x << 14));
    x ^= t ^ (t >> 14);
    t = k1 & (x ^ (x << 7));
    x ^= t ^ (t >> 7);
    return x;
}

inline std::uint64_t
loadBytes(const std::int8_t *p, std::size_t n)
{
    if (n == 8) {
        std::uint64_t x;
        std::memcpy(&x, p, 8); // little-endian byte j = member j
        return x;
    }
    std::uint64_t x = 0;
    std::memcpy(&x, p, n);
    return x;
}

} // namespace detail

/**
 * Pack the low @p bits bits of each value's two's-complement encoding.
 * Word-level: eight members are transposed per step (flip-diagonal), so
 * packing costs a few ops per member instead of one per member bit.
 * Inline: every packed kernel starts here, and the per-group call cost
 * would otherwise dominate small groups.
 */
inline PackedGroup
packGroup(std::span<const std::int8_t> group, int bits = kWeightBits)
{
    PackedGroup pg;
    pg.size = static_cast<int>(group.size());
    pg.bits = bits;
    if constexpr (std::endian::native == std::endian::little) {
        // Plane b's byte k covers members 8k..8k+7 — exactly one
        // transposed chunk. Accumulate in registers (byte stores followed
        // by whole-word reads would stall on store forwarding).
        std::uint64_t p[kWeightBits] = {};
        for (std::size_t off = 0; off < group.size(); off += 8) {
            std::size_t len = std::min<std::size_t>(8, group.size() - off);
            std::uint64_t tr = detail::transpose8(
                detail::loadBytes(group.data() + off, len));
            for (int b = 0; b < kWeightBits; ++b)
                p[b] |= ((tr >> (8 * b)) & 0xffull) << off;
        }
        for (int b = 0; b < bits; ++b)
            pg.planes[static_cast<std::size_t>(b)] = p[b];
        // Planes at and above `bits` stay zero (clean-planes invariant).
    } else {
        for (std::size_t i = 0; i < group.size(); ++i)
            for (int b = 0; b < bits; ++b)
                pg.planes[static_cast<std::size_t>(b)] |=
                    static_cast<BitColumn>(bitOf(group[i], b)) << i;
    }
    return pg;
}

/**
 * Pack the 8-bit *sign-magnitude* encoding (plane 7 = sign, planes 0..6 =
 * magnitude; -128 saturates, matching toSignMagnitude). Used by the
 * BitWave model, which schedules sign-magnitude columns.
 */
PackedGroup packGroupSignMagnitude(std::span<const std::int8_t> group);

/**
 * Unpack to INT8 values, sign-extending from the group's stored width.
 * Exact inverse of packGroup for values representable in @ref bits bits.
 */
void unpackGroup(const PackedGroup &pg, std::span<std::int8_t> out);
std::vector<std::int8_t> unpackGroup(const PackedGroup &pg);

/** Ones in plane @p b. */
inline int
packedColumnOnes(const PackedGroup &pg, int b)
{
    return std::popcount(pg.planes[static_cast<std::size_t>(b)]);
}

/** Total one-bits across all planes (plain zero-skip work, Eq. 2). */
inline int
packedOnesTotal(const PackedGroup &pg)
{
    int ones = 0;
    for (int b = 0; b < pg.bits; ++b)
        ones += std::popcount(pg.planes[static_cast<std::size_t>(b)]);
    return ones;
}

/** Densest column's popcount (the Bitlet distiller's latency). */
inline int
packedMaxColumnOnes(const PackedGroup &pg)
{
    int best = 0;
    for (int b = 0; b < pg.bits; ++b)
        best = std::max(
            best, std::popcount(pg.planes[static_cast<std::size_t>(b)]));
    return best;
}

/** BBS effectual ops: sum over planes of min(ones, n - ones) (Eq. 2/3). */
inline int
packedEffectualOps(const PackedGroup &pg)
{
    int ops = 0;
    for (int b = 0; b < pg.bits; ++b) {
        int ones = std::popcount(pg.planes[static_cast<std::size_t>(b)]);
        ops += std::min(ones, pg.size - ones);
    }
    return ops;
}

/** Members with at least one essential bit (SparTen's non-zero count). */
inline int
packedNonZeroValues(const PackedGroup &pg)
{
    BitColumn any = 0;
    for (int b = 0; b < pg.bits; ++b)
        any |= pg.planes[static_cast<std::size_t>(b)];
    return std::popcount(any);
}

/** BBS sparsity of the group: mean of max(ones, zeros)/n over planes. */
inline double
packedBbsSparsity(const PackedGroup &pg)
{
    int sparse = 0;
    for (int b = 0; b < pg.bits; ++b) {
        int ones = std::popcount(pg.planes[static_cast<std::size_t>(b)]);
        sparse += std::max(ones, pg.size - ones);
    }
    return static_cast<double>(sparse) /
           static_cast<double>(pg.bits * pg.size);
}

/**
 * Redundant sign-extension columns (paper Fig 4 step 1), word-level: a
 * column is redundant iff its plane equals the sign plane. Must agree with
 * countRedundantColumns on the unpacked values.
 */
inline int
countRedundantColumnsPacked(const PackedGroup &pg, int maxCount = 3)
{
    BitColumn sign = pg.planes[static_cast<std::size_t>(pg.bits - 1)];
    int count = 0;
    for (int b = pg.bits - 2; b >= 0 && count < maxCount; --b) {
        if (pg.planes[static_cast<std::size_t>(b)] != sign)
            break;
        ++count;
    }
    return count;
}

/**
 * Sum of @p acts at the set bits of @p word. Iterates only the set bits
 * (count-trailing-zeros), so a BBS column costs its effectual bits, not n.
 */
inline std::int64_t
gatherSum(BitColumn word, std::span<const std::int8_t> acts)
{
    std::int64_t s = 0;
    while (word != 0) {
        int i = std::countr_zero(word);
        word &= word - 1;
        s += acts[static_cast<std::size_t>(i)];
    }
    return s;
}

/**
 * Whole-tensor packed bit planes, layout `[significance][group]`.
 *
 * Groups are formed within each channel (dim 0) and never span two
 * channels; every channel contributes the same number of groups, the last
 * of which may be short. A rank-1 tensor packs as a single channel.
 */
class BitPlaneTensor
{
  public:
    BitPlaneTensor() = default;

    /** Pack @p codes with per-channel groups of @p groupSize. */
    static BitPlaneTensor pack(const Int8Tensor &codes,
                               std::int64_t groupSize);

    /** Pack a flat value sequence (single channel). */
    static BitPlaneTensor pack(std::span<const std::int8_t> values,
                               std::int64_t groupSize);

    /**
     * Re-pack in place. When the shape matches the previous packing the
     * plane store is reused instead of reallocated — repacking loops
     * (benchmark reps, cache refills) stay free of per-call heap
     * traffic, whose mmap churn otherwise dominates the packing cost for
     * megabyte-scale tensors.
     */
    void repack(std::span<const std::int8_t> values, std::int64_t channels,
                std::int64_t groupSize);

    bool empty() const { return numGroups_ == 0; }
    std::int64_t numGroups() const { return numGroups_; }
    std::int64_t numChannels() const { return channels_; }
    std::int64_t groupsPerChannel() const { return groupsPerChannel_; }
    std::int64_t groupSize() const { return groupSize_; }
    std::int64_t numel() const { return channels_ * channelSize_; }

    /** Plane @p b across all groups (group g at word g). */
    std::span<const std::uint64_t>
    plane(int b) const
    {
        return std::span<const std::uint64_t>(
            words_.data() + static_cast<std::size_t>(b) *
                                static_cast<std::size_t>(numGroups_),
            static_cast<std::size_t>(numGroups_));
    }

    /** Members of group @p g (== groupSize except channel-tail groups). */
    int
    groupMembers(std::int64_t g) const
    {
        bool tail = groupsPerChannel_ > 0 &&
                    (g % groupsPerChannel_) == groupsPerChannel_ - 1;
        return tail ? tailSize_ : static_cast<int>(groupSize_);
    }

    /** Gather group @p g's planes into a PackedGroup. */
    PackedGroup group(std::int64_t g) const;

    /** Group index of channel @p c, channel-local group @p i. */
    std::int64_t
    groupIndex(std::int64_t c, std::int64_t i) const
    {
        return c * groupsPerChannel_ + i;
    }

  private:
    std::int64_t groupSize_ = 0;
    std::int64_t numGroups_ = 0;
    std::int64_t channels_ = 0;
    std::int64_t channelSize_ = 0;
    std::int64_t groupsPerChannel_ = 0;
    int tailSize_ = 0; ///< members of each channel's last group
    /** Plane-major storage: word [b * numGroups + g]. The base is
     *  64-byte aligned, so plane 0 starts on a cache line; planes b > 0
     *  start at word b * numGroups and are only line-aligned when
     *  numGroups is a multiple of 8 (the SIMD scans use unaligned
     *  loads, so this is a perf nuance, not a contract). */
    AlignedVector<std::uint64_t> words_;
};

/**
 * Total BBS effectual ops over a packed tensor (the Eq. 2/3 work a whole
 * layer presents). Plane-major: effectual ops are separable per
 * (significance, group), so no per-group plane gather is needed.
 */
std::int64_t packedEffectualOpsTotal(const BitPlaneTensor &planes);

} // namespace bbs

#endif // BBS_CORE_BITPLANE_HPP
