#include "core/bbs_wide.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bbs {

namespace {

inline int
bitOfWide(std::int32_t v, int b)
{
    return (static_cast<std::uint32_t>(v) >> b) & 1u;
}

} // namespace

double
bbsSparsityWide(std::span<const std::int16_t> values, int bits,
                std::int64_t vectorSize)
{
    BBS_REQUIRE(bits >= 2 && bits <= 16, "precision must be 2..16");
    BBS_REQUIRE(vectorSize >= 1, "vector size must be >= 1");
    if (values.empty())
        return 0.0;

    double sparse = 0.0;
    double total = 0.0;
    for (std::size_t begin = 0; begin < values.size();
         begin += static_cast<std::size_t>(vectorSize)) {
        std::size_t end = std::min(
            begin + static_cast<std::size_t>(vectorSize), values.size());
        int n = static_cast<int>(end - begin);
        for (int b = 0; b < bits; ++b) {
            int ones = 0;
            for (std::size_t i = begin; i < end; ++i)
                ones += bitOfWide(values[i], b);
            sparse += std::max(ones, n - ones);
            total += n;
        }
    }
    return sparse / total;
}

double
bitSparsityWide(std::span<const std::int16_t> values, int bits)
{
    BBS_REQUIRE(bits >= 2 && bits <= 16, "precision must be 2..16");
    if (values.empty())
        return 0.0;
    std::int64_t ones = 0;
    for (std::int16_t v : values)
        for (int b = 0; b < bits; ++b)
            ones += bitOfWide(v, b);
    return 1.0 - static_cast<double>(ones) /
                     (static_cast<double>(values.size()) * bits);
}

std::int64_t
dotBitSerialBbsWide(std::span<const std::int16_t> weights,
                    std::span<const std::int32_t> activations, int bits)
{
    BBS_REQUIRE(weights.size() == activations.size(), "size mismatch");
    BBS_REQUIRE(bits >= 2 && bits <= 16, "precision must be 2..16");
    int n = static_cast<int>(weights.size());

    std::int64_t sumA = 0;
    for (std::int32_t a : activations)
        sumA += a;

    std::int64_t acc = 0;
    for (int b = 0; b < bits; ++b) {
        int ones = 0;
        for (int i = 0; i < n; ++i)
            ones += bitOfWide(weights[static_cast<std::size_t>(i)], b);

        std::int64_t colSum;
        if (ones <= n - ones) {
            colSum = 0;
            for (int i = 0; i < n; ++i)
                if (bitOfWide(weights[static_cast<std::size_t>(i)], b))
                    colSum += activations[static_cast<std::size_t>(i)];
        } else {
            std::int64_t zeroSum = 0;
            for (int i = 0; i < n; ++i)
                if (!bitOfWide(weights[static_cast<std::size_t>(i)], b))
                    zeroSum += activations[static_cast<std::size_t>(i)];
            colSum = sumA - zeroSum;
        }
        std::int64_t w = 1ll << b;
        if (b == bits - 1)
            w = -w; // two's complement sign column
        acc += w * colSum;
    }
    return acc;
}

} // namespace bbs
