/**
 * @file
 * The bit-serial dot-product *kernels* (paper Eq. 1-3) and their shared
 * result type, stripped of any API-surface concerns.
 *
 * These are the executable forms the engine facade (engine/engine.hpp)
 * dispatches between: the dense reference, zero-bit skipping, BBS
 * bi-directional skipping, and the compressed-domain form the BitVert PE
 * computes — each with a per-element scalar twin the packed path is pinned
 * bit-identical to. User code targets `engine::Session::dot()` /
 * `engine::dot()` (or, compatibility-gated, the legacy free functions in
 * core/bbs_dot.hpp); internal callers and the facade itself bind these
 * `detail` kernels directly.
 */
#ifndef BBS_CORE_DOT_KERNELS_HPP
#define BBS_CORE_DOT_KERNELS_HPP

#include <cstdint>
#include <span>

#include "core/group_compressor.hpp"

namespace bbs {

struct PackedGroup;

/** Work/result of a BBS bit-serial execution. */
struct BbsDotResult
{
    std::int64_t value = 0;
    /** Effectual bit operations performed (<= half the total bits). */
    std::int64_t effectualOps = 0;
    /** Columns where ones dominated and the vector was inverted (Eq. 3). */
    int invertedColumns = 0;
};

namespace detail {

/** Dense reference: sum of W_i * A_i in full precision. */
std::int64_t dotReferenceKernel(std::span<const std::int8_t> weights,
                                std::span<const std::int8_t> activations);

/** Zero-bit skipping (Eq. 2) over packed planes. */
std::int64_t dotZeroSkipKernel(std::span<const std::int8_t> weights,
                               std::span<const std::int8_t> activations);

/** Per-element loop form of dotZeroSkipKernel (pinned identical). */
std::int64_t dotZeroSkipScalarKernel(std::span<const std::int8_t> weights,
                                     std::span<const std::int8_t> activations);

/** Bi-directional skipping (Eq. 2/3) over packed planes. */
BbsDotResult dotBbsKernel(std::span<const std::int8_t> weights,
                          std::span<const std::int8_t> activations);

/** Per-element loop form of dotBbsKernel (pinned identical). */
BbsDotResult dotBbsScalarKernel(std::span<const std::int8_t> weights,
                                std::span<const std::int8_t> activations);

/** Compressed-domain dot against a BBS-compressed group (PE Fig 7). */
BbsDotResult dotCompressedKernel(const CompressedGroup &cg,
                                 std::span<const std::int8_t> activations);

/** Per-element loop form of dotCompressedKernel (pinned identical). */
BbsDotResult dotCompressedScalarKernel(const CompressedGroup &cg,
                                       std::span<const std::int8_t> activations);

/**
 * Compressed-domain dot from *already packed* stored-column planes — the
 * form CompressedRowPlanes caches per (row, group). Exactly what
 * dotCompressedKernel computes after its packGroup(cg.stored,
 * cg.storedBits) step, so a per-dot plan executing prepacked rows stays
 * bit-identical to the CompressedGroup path.
 *
 * @param pg             packed stored columns (planes at significances
 *                       >= pg.bits must be zero)
 * @param prunedColumns  significance shift of the stored LSB
 * @param constant       BBS constant (multiplies the activation sum)
 */
BbsDotResult dotCompressedPacked(const PackedGroup &pg, int prunedColumns,
                                 std::int32_t constant,
                                 std::span<const std::int8_t> activations);

} // namespace detail
} // namespace bbs

#endif // BBS_CORE_DOT_KERNELS_HPP
