#include "core/global_pruning.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace bbs {

GlobalPruneConfig
conservativeConfig()
{
    GlobalPruneConfig cfg;
    cfg.beta = 0.1;
    cfg.targetColumns = 2;
    cfg.strategy = PruneStrategy::RoundedAveraging;
    return cfg;
}

GlobalPruneConfig
moderateConfig()
{
    GlobalPruneConfig cfg;
    cfg.beta = 0.2;
    cfg.targetColumns = 4;
    cfg.strategy = PruneStrategy::ZeroPointShifting;
    return cfg;
}

int
PrunedLayer::numSensitive() const
{
    return static_cast<int>(
        std::count(sensitive.begin(), sensitive.end(), true));
}

double
PrunedLayer::effectiveBits() const
{
    std::int64_t n = codes.numel();
    return n ? static_cast<double>(storageBits) / static_cast<double>(n)
             : 0.0;
}

double
PrunedModel::effectiveBits() const
{
    std::int64_t bits = 0;
    std::int64_t n = 0;
    for (const auto &l : layers) {
        bits += l.storageBits;
        n += l.codes.numel();
    }
    return n ? static_cast<double>(bits) / static_cast<double>(n) : 0.0;
}

double
PrunedModel::compressionRatio() const
{
    double eff = effectiveBits();
    return eff > 0.0 ? 8.0 / eff : 1.0;
}

std::vector<std::vector<bool>>
selectSensitiveChannels(const std::vector<PrunableLayer> &model,
                        double beta, int channelsParallel)
{
    BBS_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0, 1]");
    BBS_REQUIRE(channelsParallel >= 1, "CH must be >= 1");

    // Global channel sorting (Algorithm 2 lines 1-3): rank every channel of
    // every layer by its scale factor and mark the top beta fraction.
    struct ChannelRef
    {
        std::size_t layer;
        std::int64_t channel;
        float scale;
    };
    std::vector<ChannelRef> all;
    for (std::size_t l = 0; l < model.size(); ++l) {
        const auto &layer = model[l];
        std::int64_t channels = layer.codes.shape().dim(0);
        BBS_REQUIRE(static_cast<std::int64_t>(layer.scales.size()) ==
                        channels,
                    "layer ", layer.name, ": scales size mismatch");
        for (std::int64_t k = 0; k < channels; ++k)
            all.push_back(
                {l, k, layer.scales[static_cast<std::size_t>(k)]});
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const ChannelRef &a, const ChannelRef &b) {
                         return a.scale > b.scale;
                     });
    std::size_t numGlobal = static_cast<std::size_t>(
        beta * static_cast<double>(all.size()));

    std::vector<std::vector<bool>> sensitive(model.size());
    std::vector<std::int64_t> perLayerGlobal(model.size(), 0);
    for (std::size_t l = 0; l < model.size(); ++l)
        sensitive[l].assign(
            static_cast<std::size_t>(model[l].codes.shape().dim(0)),
            false);
    for (std::size_t i = 0; i < numGlobal; ++i)
        ++perLayerGlobal[all[i].layer];

    // Per layer (lines 4-9): round the sensitive-channel count up to a
    // multiple of CH and take the layer's top channels by scale.
    for (std::size_t l = 0; l < model.size(); ++l) {
        const auto &layer = model[l];
        std::int64_t channels = layer.codes.shape().dim(0);
        std::int64_t numSens = perLayerGlobal[l];
        numSens = (numSens + channelsParallel - 1) / channelsParallel *
                  channelsParallel;
        numSens = std::min(numSens, channels);

        std::vector<std::int64_t> order(
            static_cast<std::size_t>(channels));
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::int64_t a, std::int64_t b) {
                             return layer.scales[static_cast<std::size_t>(
                                        a)] >
                                    layer.scales[static_cast<std::size_t>(
                                        b)];
                         });
        for (std::int64_t i = 0; i < numSens; ++i)
            sensitive[l][static_cast<std::size_t>(
                order[static_cast<std::size_t>(i)])] = true;
    }
    return sensitive;
}

PrunedModel
globalBinaryPrune(const std::vector<PrunableLayer> &model,
                  const GlobalPruneConfig &cfg)
{
    PrunedModel out;
    out.layers.resize(model.size());
    auto sensitive =
        selectSensitiveChannels(model, cfg.beta, cfg.channelsParallel);

    for (std::size_t l = 0; l < model.size(); ++l) {
        const auto &layer = model[l];
        PrunedLayer &pl = out.layers[l];
        pl.name = layer.name;
        pl.codes = layer.codes;
        pl.sensitive = sensitive[l];

        std::int64_t channels = layer.codes.shape().dim(0);
        std::int64_t cs = layer.codes.shape().channelSize();
        std::vector<std::int64_t> bitsPerChannel(
            static_cast<std::size_t>(channels), 0);

        parallelFor(channels, [&](std::int64_t k) {
            if (pl.sensitive[static_cast<std::size_t>(k)]) {
                // Sensitive channels stay at full 8-bit precision.
                bitsPerChannel[static_cast<std::size_t>(k)] = cs * 8;
                return;
            }
            auto src = layer.codes.channel(k);
            auto dst = pl.codes.channel(k);
            std::int64_t groups =
                (cs + cfg.groupSize - 1) / cfg.groupSize;
            std::int64_t bits = 0;
            for (std::int64_t g = 0; g < groups; ++g) {
                std::int64_t begin = g * cfg.groupSize;
                std::int64_t end = std::min(begin + cfg.groupSize, cs);
                std::span<const std::int8_t> grp(
                    src.data() + begin,
                    static_cast<std::size_t>(end - begin));
                CompressedGroup cg = compressGroup(
                    grp, cfg.targetColumns, cfg.strategy);
                bits += cg.storageBits();
                std::vector<std::int8_t> rec = cg.decompress();
                std::copy(rec.begin(), rec.end(), dst.begin() + begin);
            }
            bitsPerChannel[static_cast<std::size_t>(k)] = bits;
        }, /*chunk=*/1);

        pl.storageBits = std::accumulate(bitsPerChannel.begin(),
                                         bitsPerChannel.end(),
                                         std::int64_t{0});
    }
    return out;
}

} // namespace bbs
