#include "core/compressed_tensor.hpp"

#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace bbs {

Int8Tensor
CompressedTensor::decompress() const
{
    Int8Tensor out(shape_);
    parallelFor(
        static_cast<std::int64_t>(groups_.size()), [&](std::int64_t g) {
            std::vector<std::int8_t> vals =
                groups_[static_cast<std::size_t>(g)].decompress();
            std::int64_t base = g * groupSize_;
            for (std::size_t i = 0; i < vals.size(); ++i)
                out.flat(base + static_cast<std::int64_t>(i)) = vals[i];
        });
    return out;
}

std::int64_t
CompressedTensor::storageBits() const
{
    std::int64_t bits = 0;
    for (const auto &g : groups_)
        bits += g.storageBits();
    return bits;
}

double
CompressedTensor::effectiveBitsPerWeight() const
{
    std::int64_t n = shape_.numel();
    if (n == 0)
        return 0.0;
    return static_cast<double>(storageBits()) / static_cast<double>(n);
}

CompressedTensor
CompressedTensor::compress(const Int8Tensor &codes, std::int64_t groupSize,
                           int targetColumns, PruneStrategy strategy)
{
    BBS_REQUIRE(groupSize >= 1 && groupSize <= 64,
                "group size must be 1..64, got ", groupSize);
    CompressedTensor ct;
    ct.shape_ = codes.shape();
    ct.groupSize_ = groupSize;
    ct.strategy_ = strategy;
    ct.targetColumns_ = targetColumns;
    std::int64_t groups = codes.numGroups(groupSize);
    ct.groups_.resize(static_cast<std::size_t>(groups));
    ct.packed_.resize(static_cast<std::size_t>(groups));
    parallelFor(groups, [&](std::int64_t g) {
        CompressedGroup cg = compressGroup(codes.group(g, groupSize),
                                           targetColumns, strategy);
        ct.packed_[static_cast<std::size_t>(g)] =
            packGroup(cg.stored, cg.storedBits);
        ct.groups_[static_cast<std::size_t>(g)] = std::move(cg);
    });
    return ct;
}

Int8Tensor
binaryPruneTensor(const Int8Tensor &codes, std::int64_t groupSize,
                  int targetColumns, PruneStrategy strategy)
{
    return CompressedTensor::compress(codes, groupSize, targetColumns,
                                      strategy)
        .decompress();
}

} // namespace bbs
