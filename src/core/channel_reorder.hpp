/**
 * @file
 * Channel reordering (the paper's §IV-C, Fig 9).
 *
 * Per-channel global pruning leaves channels at different precisions; to
 * avoid unaligned DRAM access, channels of the same precision are grouped
 * into contiguous memory chunks. Unlike SparTen's static software
 * unshuffle of the *next layer's weights* — which breaks when two weight
 * tensors consume the same input (residual blocks) — BitVert unshuffles the
 * *outputs* on write-back using a per-channel original-index buffer.
 */
#ifndef BBS_CORE_CHANNEL_REORDER_HPP
#define BBS_CORE_CHANNEL_REORDER_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace bbs {

/** A precision-sorted channel order plus the inverse map to undo it. */
struct ChannelOrder
{
    /** reordered position -> original channel index (the index buffer). */
    std::vector<std::int64_t> originalIndex;
    /** original channel index -> reordered position. */
    std::vector<std::int64_t> reorderedPosition;
    /** Chunk boundaries: [0] sensitive-channel count, [1] normal count. */
    std::int64_t sensitiveCount = 0;
};

/**
 * Build the order that stores all sensitive (8-bit) channels first,
 * followed by all pruned channels, preserving relative order within each
 * class (Fig 9(a)).
 */
ChannelOrder buildChannelOrder(const std::vector<bool> &sensitive);

/** Permute the channel dimension of @p weights into the given order. */
Int8Tensor reorderChannels(const Int8Tensor &weights,
                           const ChannelOrder &order);

/**
 * Undo the reorder on an *output* tensor whose dim 0 is the channel that
 * was computed in reordered order (Fig 9(c)): output channel at reordered
 * position p is written back to originalIndex[p].
 */
FloatTensor unshuffleOutput(const FloatTensor &output,
                            const ChannelOrder &order);
Int32Tensor unshuffleOutput(const Int32Tensor &output,
                            const ChannelOrder &order);

} // namespace bbs

#endif // BBS_CORE_CHANNEL_REORDER_HPP
