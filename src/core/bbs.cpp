#include "core/bbs.hpp"

#include <algorithm>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"

namespace bbs {

double
bitSparsityTwosComplement(const Int8Tensor &codes)
{
    if (codes.numel() == 0)
        return 0.0;
    std::int64_t ones = 0;
    for (std::int8_t v : codes.data())
        ones += popcount8(v);
    double totalBits =
        static_cast<double>(codes.numel()) * kWeightBits;
    return 1.0 - static_cast<double>(ones) / totalBits;
}

double
bitSparsitySignMagnitude(const Int8Tensor &codes)
{
    if (codes.numel() == 0)
        return 0.0;
    std::int64_t ones = 0;
    for (std::int8_t v : codes.data())
        ones += essentialBitsSignMagnitude(v);
    double totalBits =
        static_cast<double>(codes.numel()) * kWeightBits;
    return 1.0 - static_cast<double>(ones) / totalBits;
}

double
bbsSparsityGroup(std::span<const std::int8_t> group)
{
    int n = static_cast<int>(group.size());
    BBS_REQUIRE(n >= 1 && n <= 64, "group size must be 1..64");
    double sparse = 0.0;
    for (int b = 0; b < kWeightBits; ++b) {
        BitColumn col = extractColumn(group, b);
        int ones = columnPopcount(col, n);
        sparse += static_cast<double>(std::max(ones, n - ones));
    }
    return sparse / static_cast<double>(kWeightBits * n);
}

double
bbsSparsity(const Int8Tensor &codes, std::int64_t vectorSize)
{
    std::int64_t groups = codes.numGroups(vectorSize);
    if (groups == 0)
        return 0.0;
    double sparseBits = 0.0;
    double totalBits = 0.0;
    for (std::int64_t g = 0; g < groups; ++g) {
        auto span = codes.group(g, vectorSize);
        int n = static_cast<int>(span.size());
        for (int b = 0; b < kWeightBits; ++b) {
            BitColumn col = extractColumn(span, b);
            int ones = columnPopcount(col, n);
            sparseBits += static_cast<double>(std::max(ones, n - ones));
            totalBits += static_cast<double>(n);
        }
    }
    return sparseBits / totalBits;
}

EffectualBitStats
effectualBitStats(const Int8Tensor &codes, std::int64_t vectorSize)
{
    EffectualBitStats st;
    std::int64_t groups = codes.numGroups(vectorSize);
    if (groups == 0)
        return st;
    double sumZero = 0.0, sumBbs = 0.0;
    double maxZero = 0.0, maxBbs = 0.0;
    std::int64_t columns = 0;
    for (std::int64_t g = 0; g < groups; ++g) {
        auto span = codes.group(g, vectorSize);
        int n = static_cast<int>(span.size());
        for (int b = 0; b < kWeightBits; ++b) {
            BitColumn col = extractColumn(span, b);
            int ones = columnPopcount(col, n);
            int bbsWork = std::min(ones, n - ones);
            sumZero += ones;
            sumBbs += bbsWork;
            maxZero = std::max(maxZero, static_cast<double>(ones));
            maxBbs = std::max(maxBbs, static_cast<double>(bbsWork));
            ++columns;
        }
    }
    st.meanZeroSkip = sumZero / static_cast<double>(columns);
    st.meanBbs = sumBbs / static_cast<double>(columns);
    st.maxZeroSkip = maxZero;
    st.maxBbs = maxBbs;
    return st;
}

} // namespace bbs
