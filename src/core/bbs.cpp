#include "core/bbs.hpp"

#include <algorithm>
#include <cstring>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"
#include "core/bitplane.hpp"
#include "simd/simd.hpp"

namespace bbs {

double
bitSparsityTwosComplement(const Int8Tensor &codes)
{
    if (codes.numel() == 0)
        return 0.0;
    // The encoding's one-bits are position-independent, so no unpacking
    // is needed: one vectorized popcount scan over the raw bytes.
    std::span<const std::int8_t> data = codes.data();
    std::int64_t ones = simdKernels().popcountSumBytes(
        data.data(), static_cast<std::int64_t>(data.size()));
    double totalBits =
        static_cast<double>(codes.numel()) * kWeightBits;
    return 1.0 - static_cast<double>(ones) / totalBits;
}

double
bitSparsitySignMagnitude(const Int8Tensor &codes)
{
    if (codes.numel() == 0)
        return 0.0;
    std::int64_t ones = 0;
    for (std::int8_t v : codes.data())
        ones += essentialBitsSignMagnitude(v);
    double totalBits =
        static_cast<double>(codes.numel()) * kWeightBits;
    return 1.0 - static_cast<double>(ones) / totalBits;
}

double
bbsSparsityGroup(std::span<const std::int8_t> group)
{
    int n = static_cast<int>(group.size());
    BBS_REQUIRE(n >= 1 && n <= 64, "group size must be 1..64");
    return packedBbsSparsity(packGroup(group));
}

double
bbsSparsity(const Int8Tensor &codes, std::int64_t vectorSize)
{
    std::int64_t groups = codes.numGroups(vectorSize);
    if (groups == 0)
        return 0.0;
    // Groups are formed over the flat order (matching codes.group()).
    // Blocks of groups are packed plane-major into an L1-resident buffer
    // (no heap traffic), then each plane reduces with one vectorized
    // max(ones, n - ones) scan. Only the flat tail group can be short;
    // its plane bits above the member count are zero, so it is folded in
    // with its own member count.
    constexpr std::int64_t kBlock = 256; // 8 planes x 256 words = 16 KiB
    alignas(kCacheLineBytes) std::uint64_t block[kWeightBits][kBlock];
    const SimdKernels &simd = simdKernels();
    int full = static_cast<int>(vectorSize);
    std::int64_t sparseBits = 0;
    for (std::int64_t g0 = 0; g0 < groups; g0 += kBlock) {
        std::int64_t len = std::min(kBlock, groups - g0);
        bool shortTail = false;
        for (std::int64_t j = 0; j < len; ++j) {
            PackedGroup pg = packGroup(codes.group(g0 + j, vectorSize));
            for (int b = 0; b < kWeightBits; ++b)
                block[b][j] = pg.planes[static_cast<std::size_t>(b)];
            shortTail = pg.size != full; // only ever the last group
        }
        std::int64_t scanLen = shortTail ? len - 1 : len;
        for (int b = 0; b < kWeightBits; ++b)
            sparseBits += simd.sparseBitsSum(block[b], scanLen, full);
        if (shortTail) {
            int tail = static_cast<int>(
                codes.group(g0 + len - 1, vectorSize).size());
            for (int b = 0; b < kWeightBits; ++b) {
                int ones = std::popcount(
                    block[b][static_cast<std::size_t>(len - 1)]);
                sparseBits += std::max(ones, tail - ones);
            }
        }
    }
    return static_cast<double>(sparseBits) /
           static_cast<double>(codes.numel() * kWeightBits);
}

double
bbsSparsityScalar(const Int8Tensor &codes, std::int64_t vectorSize)
{
    std::int64_t groups = codes.numGroups(vectorSize);
    if (groups == 0)
        return 0.0;
    double sparseBits = 0.0;
    double totalBits = 0.0;
    for (std::int64_t g = 0; g < groups; ++g) {
        auto span = codes.group(g, vectorSize);
        int n = static_cast<int>(span.size());
        for (int b = 0; b < kWeightBits; ++b) {
            BitColumn col = extractColumn(span, b);
            int ones = columnPopcount(col, n);
            sparseBits += static_cast<double>(std::max(ones, n - ones));
            totalBits += static_cast<double>(n);
        }
    }
    return sparseBits / totalBits;
}

EffectualBitStats
effectualBitStats(const Int8Tensor &codes, std::int64_t vectorSize)
{
    EffectualBitStats st;
    std::int64_t groups = codes.numGroups(vectorSize);
    if (groups == 0)
        return st;
    std::int64_t sumZero = 0, sumBbs = 0;
    int maxZero = 0, maxBbs = 0;
    std::int64_t columns = 0;
    for (std::int64_t g = 0; g < groups; ++g) {
        PackedGroup pg = packGroup(codes.group(g, vectorSize));
        for (int b = 0; b < kWeightBits; ++b) {
            int ones = packedColumnOnes(pg, b);
            int bbsWork = std::min(ones, pg.size - ones);
            sumZero += ones;
            sumBbs += bbsWork;
            maxZero = std::max(maxZero, ones);
            maxBbs = std::max(maxBbs, bbsWork);
            ++columns;
        }
    }
    st.meanZeroSkip =
        static_cast<double>(sumZero) / static_cast<double>(columns);
    st.meanBbs =
        static_cast<double>(sumBbs) / static_cast<double>(columns);
    st.maxZeroSkip = static_cast<double>(maxZero);
    st.maxBbs = static_cast<double>(maxBbs);
    return st;
}

} // namespace bbs
