#include "core/bbs.hpp"

#include <algorithm>
#include <cstring>

#include "common/bit_utils.hpp"
#include "common/logging.hpp"
#include "core/bitplane.hpp"

namespace bbs {

double
bitSparsityTwosComplement(const Int8Tensor &codes)
{
    if (codes.numel() == 0)
        return 0.0;
    // Word-level: popcount eight values per step; the encoding's one-bits
    // are position-independent, so no unpacking is needed.
    std::span<const std::int8_t> data = codes.data();
    std::int64_t ones = 0;
    std::size_t i = 0;
    for (; i + 8 <= data.size(); i += 8) {
        std::uint64_t word;
        std::memcpy(&word, data.data() + i, 8);
        ones += std::popcount(word);
    }
    for (; i < data.size(); ++i)
        ones += popcount8(data[i]);
    double totalBits =
        static_cast<double>(codes.numel()) * kWeightBits;
    return 1.0 - static_cast<double>(ones) / totalBits;
}

double
bitSparsitySignMagnitude(const Int8Tensor &codes)
{
    if (codes.numel() == 0)
        return 0.0;
    std::int64_t ones = 0;
    for (std::int8_t v : codes.data())
        ones += essentialBitsSignMagnitude(v);
    double totalBits =
        static_cast<double>(codes.numel()) * kWeightBits;
    return 1.0 - static_cast<double>(ones) / totalBits;
}

double
bbsSparsityGroup(std::span<const std::int8_t> group)
{
    int n = static_cast<int>(group.size());
    BBS_REQUIRE(n >= 1 && n <= 64, "group size must be 1..64");
    return packedBbsSparsity(packGroup(group));
}

double
bbsSparsity(const Int8Tensor &codes, std::int64_t vectorSize)
{
    std::int64_t groups = codes.numGroups(vectorSize);
    if (groups == 0)
        return 0.0;
    // Groups are formed over the flat order (matching codes.group());
    // each group is packed in registers and reduced with plane popcounts.
    std::int64_t sparseBits = 0;
    for (std::int64_t g = 0; g < groups; ++g) {
        PackedGroup pg = packGroup(codes.group(g, vectorSize));
        for (int b = 0; b < kWeightBits; ++b) {
            int ones = packedColumnOnes(pg, b);
            sparseBits += std::max(ones, pg.size - ones);
        }
    }
    return static_cast<double>(sparseBits) /
           static_cast<double>(codes.numel() * kWeightBits);
}

double
bbsSparsityScalar(const Int8Tensor &codes, std::int64_t vectorSize)
{
    std::int64_t groups = codes.numGroups(vectorSize);
    if (groups == 0)
        return 0.0;
    double sparseBits = 0.0;
    double totalBits = 0.0;
    for (std::int64_t g = 0; g < groups; ++g) {
        auto span = codes.group(g, vectorSize);
        int n = static_cast<int>(span.size());
        for (int b = 0; b < kWeightBits; ++b) {
            BitColumn col = extractColumn(span, b);
            int ones = columnPopcount(col, n);
            sparseBits += static_cast<double>(std::max(ones, n - ones));
            totalBits += static_cast<double>(n);
        }
    }
    return sparseBits / totalBits;
}

EffectualBitStats
effectualBitStats(const Int8Tensor &codes, std::int64_t vectorSize)
{
    EffectualBitStats st;
    std::int64_t groups = codes.numGroups(vectorSize);
    if (groups == 0)
        return st;
    std::int64_t sumZero = 0, sumBbs = 0;
    int maxZero = 0, maxBbs = 0;
    std::int64_t columns = 0;
    for (std::int64_t g = 0; g < groups; ++g) {
        PackedGroup pg = packGroup(codes.group(g, vectorSize));
        for (int b = 0; b < kWeightBits; ++b) {
            int ones = packedColumnOnes(pg, b);
            int bbsWork = std::min(ones, pg.size - ones);
            sumZero += ones;
            sumBbs += bbsWork;
            maxZero = std::max(maxZero, ones);
            maxBbs = std::max(maxBbs, bbsWork);
            ++columns;
        }
    }
    st.meanZeroSkip =
        static_cast<double>(sumZero) / static_cast<double>(columns);
    st.meanBbs =
        static_cast<double>(sumBbs) / static_cast<double>(columns);
    st.maxZeroSkip = static_cast<double>(maxZero);
    st.maxBbs = static_cast<double>(maxBbs);
    return st;
}

} // namespace bbs
