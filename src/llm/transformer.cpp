#include "llm/transformer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "gemm/gemm.hpp"

namespace bbs::llm {

namespace {

/** Deterministic small-magnitude INT8 fill (same LCG family as the
 *  autotuner's operand fill): values in [-mag, mag]. */
void
fillInt8(Int8Tensor &t, std::uint64_t seed, int mag)
{
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        t.flat(i) = static_cast<std::int8_t>(
            static_cast<std::int64_t>(state >> 33) % (2 * mag + 1) - mag);
    }
}

/**
 * Symmetric per-row INT8 quantisation: out = round(in * 127 / amax),
 * returning the dequant scale amax / 127. Reads only this row — the
 * per-row-scale contract that keeps batched runs bit-identical to
 * unbatched ones.
 */
float
quantizeRowTo(std::span<const float> in, std::int8_t *out)
{
    float amax = 0.0f;
    for (float v : in)
        amax = std::max(amax, std::fabs(v));
    if (amax == 0.0f) {
        std::fill_n(out, in.size(), std::int8_t{0});
        return 1.0f;
    }
    float inv = 127.0f / amax;
    for (std::size_t i = 0; i < in.size(); ++i) {
        long q = std::lrintf(in[i] * inv);
        out[i] = static_cast<std::int8_t>(
            std::clamp<long>(q, -127, 127));
    }
    return amax / 127.0f;
}

/** RMSNorm one row: out = x * gamma / sqrt(mean(x^2) + eps). The sum
 *  runs in double, sequentially — deterministic. */
void
rmsNormRow(std::span<const float> x, std::span<const float> gamma,
           float *out)
{
    double ss = 0.0;
    for (float v : x)
        ss += static_cast<double>(v) * static_cast<double>(v);
    float inv = 1.0f / std::sqrt(static_cast<float>(
                           ss / static_cast<double>(x.size())) +
                       1e-5f);
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] * gamma[i] * inv;
}

float
silu(float x)
{
    return x / (1.0f + std::exp(-x));
}

} // namespace

TransformerModel::Workspace::Workspace()
    : qOp(engine::PackedOperand::viewDense(qPacked)),
      cOp(engine::PackedOperand::viewDense(cPacked))
{
}

TransformerModel::TransformerModel(const TransformerConfig &cfg,
                                   engine::EngineConfig engineCfg)
    : cfg_(cfg), session_(std::move(engineCfg))
{
    BBS_REQUIRE(cfg.nHeads >= 1 && cfg.dModel % cfg.nHeads == 0,
                "dModel must divide into heads");
    std::int64_t dHead = cfg.dHead();
    BBS_REQUIRE(dHead >= 2 && dHead <= 64 && dHead % 2 == 0,
                "head width must be even and 2..64 (one packGroup per "
                "token, RoPE pairs), got ", dHead);
    BBS_REQUIRE(cfg.dModel % cfg.groupSize == 0 &&
                    cfg.dFf % cfg.groupSize == 0,
                "dModel and dFf must be multiples of the BBS group size");
    BBS_REQUIRE(cfg.nLayers >= 1 && cfg.vocab >= 2 && cfg.maxSeq >= 1,
                "degenerate transformer shape");
    BBS_REQUIRE((cfg.maxSeq + 63) / 64 * 64 <= kMaxGemmDepth &&
                    cfg.dFf <= kMaxGemmDepth,
                "sequence capacity / dFf exceed the INT32 GEMM depth bound");

    emb_ = Int8Tensor(Shape{cfg.vocab, cfg.dModel});
    fillInt8(emb_, cfg.seed * 1009 + 7, 63);
    embScale_ = 1.0f / 64.0f;
    wScale_ = 1.0f / (127.0f * 8.0f);

    engine::PackOptions popts;
    popts.groupSize = cfg.groupSize;
    popts.targetColumns = cfg.targetColumns;
    engine::ShapeHints hints{cfg.expectedBatch};
    std::uint64_t seed = cfg.seed * 6364136223846793005ull + 11;
    auto makePlan = [&](std::int64_t rows, std::int64_t cols) {
        Int8Tensor w(Shape{rows, cols});
        fillInt8(w, ++seed, 15);
        return session_.plan(session_.pack(w, popts), hints);
    };
    auto makeGamma = [&](std::int64_t n) {
        std::vector<float> g(static_cast<std::size_t>(n));
        std::uint64_t state = ++seed;
        for (auto &v : g) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            v = 0.75f + static_cast<float>((state >> 40) & 0xff) / 512.0f;
        }
        return g;
    };

    layers_.reserve(static_cast<std::size_t>(cfg.nLayers));
    for (std::int64_t l = 0; l < cfg.nLayers; ++l) {
        LayerWeights w;
        w.q = makePlan(cfg.dModel, cfg.dModel);
        w.k = makePlan(cfg.dModel, cfg.dModel);
        w.v = makePlan(cfg.dModel, cfg.dModel);
        w.o = makePlan(cfg.dModel, cfg.dModel);
        w.up = makePlan(cfg.dFf, cfg.dModel);
        w.down = makePlan(cfg.dModel, cfg.dFf);
        w.gammaAttn = makeGamma(cfg.dModel);
        w.gammaMlp = makeGamma(cfg.dModel);
        layers_.push_back(std::move(w));
    }
    lmHead_ = makePlan(cfg.vocab, cfg.dModel);
    gammaFinal_ = makeGamma(cfg.dModel);

    std::int64_t half = dHead / 2;
    ropeCos_.resize(static_cast<std::size_t>(cfg.maxSeq * half));
    ropeSin_.resize(static_cast<std::size_t>(cfg.maxSeq * half));
    for (std::int64_t p = 0; p < cfg.maxSeq; ++p)
        for (std::int64_t i = 0; i < half; ++i) {
            double theta =
                static_cast<double>(p) *
                std::pow(10000.0, -2.0 * static_cast<double>(i) /
                                      static_cast<double>(dHead));
            ropeCos_[static_cast<std::size_t>(p * half + i)] =
                static_cast<float>(std::cos(theta));
            ropeSin_[static_cast<std::size_t>(p * half + i)] =
                static_cast<float>(std::sin(theta));
        }
}

std::unique_ptr<KvCache>
TransformerModel::makeCache(std::int64_t capacity) const
{
    KvCacheConfig kcfg;
    kcfg.layers = cfg_.nLayers;
    kcfg.heads = cfg_.nHeads;
    kcfg.dHead = cfg_.dHead();
    kcfg.capacity = std::clamp<std::int64_t>(capacity, 1, cfg_.maxSeq);
    return std::make_unique<KvCache>(session_, kcfg);
}

void
TransformerModel::attentionRow(const StepRow &row, std::int64_t layer,
                               Workspace &ws, std::int64_t r) const
{
    KvCache *cache = row.cache;
    std::int64_t dModel = cfg_.dModel;
    std::int64_t dHead = cfg_.dHead();
    std::int64_t T = row.pos + 1;
    std::int64_t cap = cache->capacity();
    std::size_t rowOff = static_cast<std::size_t>(r * dModel);
    std::span<const float> kRow{ws.kf.data() + rowOff,
                                static_cast<std::size_t>(dModel)};
    std::span<const float> vRow{ws.vf.data() + rowOff,
                                static_cast<std::size_t>(dModel)};
    std::span<const float> qRow{ws.qf.data() + rowOff,
                                static_cast<std::size_t>(dModel)};

    // This token's K/V rows land in the cache before its own attention
    // runs; earlier rows of the same sequence in this batch have already
    // appended (ascending-position contract), so rows 0..T-1 all hold
    // tokens.
    float kScale = quantizeRowTo(kRow, ws.k8.data());
    float vScale = quantizeRowTo(vRow, ws.v8.data());
    cache->append(layer, row.pos,
                  {ws.k8.data(), static_cast<std::size_t>(dModel)}, kScale,
                  {ws.v8.data(), static_cast<std::size_t>(dModel)}, vScale);
    float qScale = quantizeRowTo(qRow, ws.q8.data());

    float invSqrt = 1.0f / std::sqrt(static_cast<float>(dHead));
    for (std::int64_t h = 0; h < cfg_.nHeads; ++h) {
        BitSerialMatrix::packInto(
            {ws.q8.data() + static_cast<std::size_t>(h * dHead),
             static_cast<std::size_t>(dHead)},
            1, dHead, ws.qPacked);
        cache->scores(layer, h, ws.qOp, T, ws.s32);

        // Softmax over the dequantised integer scores, then fold each
        // token's V dequant scale into the probability so the value
        // product is one more bit-exact integer GEMM.
        float maxv = -std::numeric_limits<float>::infinity();
        for (std::int64_t t = 0; t < T; ++t) {
            float s = static_cast<float>(ws.s32.at(0, t)) * qScale *
                      cache->kScale(layer, t) * invSqrt;
            ws.probs[static_cast<std::size_t>(t)] = s;
            maxv = std::max(maxv, s);
        }
        double sum = 0.0;
        for (std::int64_t t = 0; t < T; ++t) {
            float e = std::exp(ws.probs[static_cast<std::size_t>(t)] - maxv);
            ws.probs[static_cast<std::size_t>(t)] = e;
            sum += static_cast<double>(e);
        }
        float invSum = 1.0f / static_cast<float>(sum);
        for (std::int64_t t = 0; t < T; ++t)
            ws.cFloat[static_cast<std::size_t>(t)] =
                ws.probs[static_cast<std::size_t>(t)] * invSum *
                cache->vScale(layer, t);
        float cs = quantizeRowTo(
            {ws.cFloat.data(), static_cast<std::size_t>(T)}, ws.c8.data());
        std::fill(ws.c8.begin() + static_cast<std::ptrdiff_t>(T),
                  ws.c8.begin() + static_cast<std::ptrdiff_t>(cap),
                  std::int8_t{0}); // zero columns AND away non-tokens
        BitSerialMatrix::packInto(
            {ws.c8.data(), static_cast<std::size_t>(cap)}, 1, cap,
            ws.cPacked);
        cache->values(layer, h, ws.cOp, ws.o32);
        float *attnOut = ws.attn.data() + rowOff +
                         static_cast<std::size_t>(h * dHead);
        for (std::int64_t d = 0; d < dHead; ++d)
            attnOut[d] = static_cast<float>(ws.o32.at(0, d)) * cs;
    }
}

void
TransformerModel::forward(std::span<StepRow> rows, Workspace &ws) const
{
    std::int64_t R = static_cast<std::int64_t>(rows.size());
    BBS_REQUIRE(R >= 1, "forward needs at least one row");
    std::int64_t dModel = cfg_.dModel;
    std::int64_t dHead = cfg_.dHead();
    std::int64_t half = dHead / 2;
    std::int64_t maxCap = 0;
    for (const StepRow &row : rows) {
        BBS_REQUIRE(row.cache != nullptr, "row without a cache");
        BBS_REQUIRE(row.token >= 0 && row.token < cfg_.vocab,
                    "token id ", row.token, " outside vocab ", cfg_.vocab);
        BBS_REQUIRE(row.pos >= 0 && row.pos < cfg_.maxSeq &&
                        row.pos < row.cache->capacity(),
                    "position ", row.pos, " out of range");
        maxCap = std::max(maxCap, row.cache->capacity());
    }

    std::size_t rd = static_cast<std::size_t>(R * dModel);
    ws.x.resize(rd);
    ws.norm.resize(static_cast<std::size_t>(
        R * std::max(dModel, cfg_.dFf)));
    ws.qf.resize(rd);
    ws.kf.resize(rd);
    ws.vf.resize(rd);
    ws.attn.resize(rd);
    ws.rowScale.resize(static_cast<std::size_t>(R));
    ws.k8.resize(static_cast<std::size_t>(dModel));
    ws.v8.resize(static_cast<std::size_t>(dModel));
    ws.q8.resize(static_cast<std::size_t>(dModel));
    ws.c8.resize(static_cast<std::size_t>(maxCap));
    ws.probs.resize(static_cast<std::size_t>(maxCap));
    ws.cFloat.resize(static_cast<std::size_t>(maxCap));
    // Score row at its high-water mark up front: scores() sizes it to
    // the live token count, which grows every step — left to amortized
    // vector growth it would still reallocate mid-decode, breaking the
    // zero-alloc steady state (micro_llm gates this).
    ws.s32.resizeTo(Shape{1, maxCap});

    // Embedding lookup.
    for (std::int64_t r = 0; r < R; ++r) {
        const std::int8_t *e = &emb_.at(rows[static_cast<std::size_t>(r)]
                                            .token, 0);
        float *x = ws.x.data() + static_cast<std::size_t>(r * dModel);
        for (std::int64_t i = 0; i < dModel; ++i)
            x[i] = static_cast<float>(e[i]) * embScale_;
    }

    auto quantizeBatch = [&](const std::vector<float> &src,
                             std::int64_t cols) {
        ws.a8.resizeTo(Shape{R, cols});
        for (std::int64_t r = 0; r < R; ++r)
            ws.rowScale[static_cast<std::size_t>(r)] = quantizeRowTo(
                {src.data() + static_cast<std::size_t>(r * cols),
                 static_cast<std::size_t>(cols)},
                &ws.a8.at(r, 0));
    };
    auto dequantBatch = [&](std::vector<float> &dst, std::int64_t cols,
                            bool add) {
        for (std::int64_t r = 0; r < R; ++r) {
            float s =
                ws.rowScale[static_cast<std::size_t>(r)] * wScale_;
            float *d = dst.data() + static_cast<std::size_t>(r * cols);
            for (std::int64_t j = 0; j < cols; ++j) {
                float v = static_cast<float>(ws.y32.at(r, j)) * s;
                d[j] = add ? d[j] + v : v;
            }
        }
    };

    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const LayerWeights &L = layers_[l];
        std::int64_t layer = static_cast<std::int64_t>(l);

        // --- attention sublayer
        for (std::int64_t r = 0; r < R; ++r)
            rmsNormRow({ws.x.data() + static_cast<std::size_t>(r * dModel),
                        static_cast<std::size_t>(dModel)},
                       L.gammaAttn,
                       ws.norm.data() + static_cast<std::size_t>(r * dModel));
        quantizeBatch(ws.norm, dModel);
        L.q.run(ws.a8, ws.y32);
        dequantBatch(ws.qf, dModel, false);
        L.k.run(ws.a8, ws.y32);
        dequantBatch(ws.kf, dModel, false);
        L.v.run(ws.a8, ws.y32);
        dequantBatch(ws.vf, dModel, false);

        for (std::int64_t r = 0; r < R; ++r) {
            const StepRow &row = rows[static_cast<std::size_t>(r)];
            // RoPE rotates q and k in-place, per head, at this row's
            // position.
            const float *cosP =
                ropeCos_.data() + static_cast<std::size_t>(row.pos * half);
            const float *sinP =
                ropeSin_.data() + static_cast<std::size_t>(row.pos * half);
            for (float *vec : {ws.qf.data(), ws.kf.data()}) {
                float *base = vec + static_cast<std::size_t>(r * dModel);
                for (std::int64_t h = 0; h < cfg_.nHeads; ++h) {
                    float *hd = base + static_cast<std::size_t>(h * dHead);
                    for (std::int64_t i = 0; i < half; ++i) {
                        float x0 = hd[i], x1 = hd[half + i];
                        hd[i] = x0 * cosP[i] - x1 * sinP[i];
                        hd[half + i] = x0 * sinP[i] + x1 * cosP[i];
                    }
                }
            }
            attentionRow(row, layer, ws, r);
        }

        quantizeBatch(ws.attn, dModel);
        L.o.run(ws.a8, ws.y32);
        dequantBatch(ws.x, dModel, true); // residual add

        // --- MLP sublayer
        for (std::int64_t r = 0; r < R; ++r)
            rmsNormRow({ws.x.data() + static_cast<std::size_t>(r * dModel),
                        static_cast<std::size_t>(dModel)},
                       L.gammaMlp,
                       ws.norm.data() + static_cast<std::size_t>(r * dModel));
        quantizeBatch(ws.norm, dModel);
        L.up.run(ws.a8, ws.y32);
        for (std::int64_t r = 0; r < R; ++r) {
            float s = ws.rowScale[static_cast<std::size_t>(r)] * wScale_;
            float *d =
                ws.norm.data() + static_cast<std::size_t>(r * cfg_.dFf);
            for (std::int64_t j = 0; j < cfg_.dFf; ++j)
                d[j] = silu(static_cast<float>(ws.y32.at(r, j)) * s);
        }
        quantizeBatch(ws.norm, cfg_.dFf);
        L.down.run(ws.a8, ws.y32);
        dequantBatch(ws.x, dModel, true);
    }

    // --- LM head, only over rows that need logits.
    std::int64_t g = 0;
    for (const StepRow &row : rows)
        if (row.wantLogits)
            ++g;
    if (g > 0) {
        ws.gatherNorm.resize(static_cast<std::size_t>(g * dModel));
        std::int64_t gi = 0;
        for (const StepRow &row : rows) {
            if (!row.wantLogits)
                continue;
            std::int64_t r = &row - rows.data();
            rmsNormRow({ws.x.data() + static_cast<std::size_t>(r * dModel),
                        static_cast<std::size_t>(dModel)},
                       gammaFinal_,
                       ws.gatherNorm.data() +
                           static_cast<std::size_t>(gi * dModel));
            ++gi;
        }
        ws.a8.resizeTo(Shape{g, dModel});
        for (std::int64_t r = 0; r < g; ++r)
            quantizeRowTo(
                {ws.gatherNorm.data() + static_cast<std::size_t>(r * dModel),
                 static_cast<std::size_t>(dModel)},
                &ws.a8.at(r, 0));
        lmHead_.run(ws.a8, ws.logits32);
        gi = 0;
        for (StepRow &row : rows) {
            if (!row.wantLogits)
                continue;
            // Greedy decode: per-row positive dequant scales keep the
            // INT32 argmax identical to the float one; first index wins
            // ties deterministically.
            std::int32_t best = ws.logits32.at(gi, 0);
            std::int32_t arg = 0;
            for (std::int64_t t = 1; t < cfg_.vocab; ++t) {
                std::int32_t v = ws.logits32.at(gi, t);
                if (v > best) {
                    best = v;
                    arg = static_cast<std::int32_t>(t);
                }
            }
            row.next = arg;
            ++gi;
        }
    }

    // Publish: every row's token (all layers appended) becomes visible.
    // Same-cache rows ascend, so the last store carries the chunk's end.
    for (const StepRow &row : rows)
        row.cache->commit(row.pos + 1);
}

std::vector<std::int32_t>
TransformerModel::generateReference(std::span<const std::int32_t> prompt,
                                    std::int64_t maxNew) const
{
    BBS_REQUIRE(!prompt.empty() && maxNew >= 1,
                "reference generation needs a prompt and maxNew >= 1");
    std::int64_t promptLen = static_cast<std::int64_t>(prompt.size());
    BBS_REQUIRE(promptLen + maxNew - 1 <= cfg_.maxSeq,
                "prompt + continuation exceed maxSeq");
    std::unique_ptr<KvCache> cache = makeCache(promptLen + maxNew);
    Workspace ws;
    std::vector<std::int32_t> out;
    out.reserve(static_cast<std::size_t>(maxNew));
    std::int32_t next = 0;
    for (std::int64_t i = 0; i < promptLen; ++i) {
        StepRow row;
        row.cache = cache.get();
        row.token = prompt[static_cast<std::size_t>(i)];
        row.pos = i;
        row.wantLogits = i + 1 == promptLen;
        forward({&row, 1}, ws);
        if (row.wantLogits)
            next = row.next;
    }
    for (std::int64_t j = 0; j < maxNew; ++j) {
        out.push_back(next);
        if (j + 1 == maxNew)
            break;
        StepRow row;
        row.cache = cache.get();
        row.token = next;
        row.pos = promptLen + j;
        row.wantLogits = true;
        forward({&row, 1}, ws);
        next = row.next;
    }
    return out;
}

} // namespace bbs::llm
