#include "llm/kv_cache.hpp"

#include "common/logging.hpp"
#include "core/bitplane.hpp"

namespace bbs::llm {

KvCache::KvCache(const engine::Session &session, const KvCacheConfig &cfg)
    : cfg_(cfg)
{
    BBS_REQUIRE(cfg.layers > 0 && cfg.heads > 0, "KvCache needs layers/heads");
    BBS_REQUIRE(cfg.dHead >= 1 && cfg.dHead <= 64,
                "KvCache head width must be 1..64 (one packGroup per "
                "token), got ", cfg.dHead);
    BBS_REQUIRE(cfg.capacity > 0, "KvCache needs a positive capacity");
    cfg_.capacity = (cfg.capacity + 63) / 64 * 64;

    kColWords_ = BitSerialMatrix::paddedColWords(cfg_.dHead);
    vColWords_ = BitSerialMatrix::paddedColWords(cfg_.capacity);
    kBlockWords_ = kWeightBits * cfg_.capacity * kColWords_;
    vBlockWords_ = kWeightBits * cfg_.dHead * vColWords_;

    std::int64_t planes = cfg_.layers * cfg_.heads;
    // resize() value-initialises: every plane word starts zero, which is
    // the packed encoding of value 0 — unwritten rows/columns are
    // indistinguishable from packed zeros (the padding contract).
    kWords_.resize(static_cast<std::size_t>(planes * kBlockWords_));
    vWords_.resize(static_cast<std::size_t>(planes * vBlockWords_));
    kScales_.resize(static_cast<std::size_t>(cfg_.layers * cfg_.capacity),
                    1.0f);
    vScales_.resize(static_cast<std::size_t>(cfg_.layers * cfg_.capacity),
                    1.0f);

    // Views first (vectors sized once — the plans hold references into
    // them, so no reallocation may follow), then plans.
    kViews_.resize(static_cast<std::size_t>(planes));
    vViews_.resize(static_cast<std::size_t>(planes));
    for (std::int64_t i = 0; i < planes; ++i) {
        kViews_[static_cast<std::size_t>(i)] = BitSerialMatrix::viewExternal(
            kWords_.data() + i * kBlockWords_, cfg_.capacity, cfg_.dHead);
        vViews_[static_cast<std::size_t>(i)] = BitSerialMatrix::viewExternal(
            vWords_.data() + i * vBlockWords_, cfg_.dHead, cfg_.capacity);
    }
    scorePlans_.reserve(static_cast<std::size_t>(planes));
    valuePlans_.reserve(static_cast<std::size_t>(planes));
    for (std::int64_t i = 0; i < planes; ++i) {
        scorePlans_.push_back(session.plan(
            engine::PackedOperand::viewDense(
                kViews_[static_cast<std::size_t>(i)]),
            engine::ShapeHints{1}));
        valuePlans_.push_back(session.plan(
            engine::PackedOperand::viewDense(
                vViews_[static_cast<std::size_t>(i)]),
            engine::ShapeHints{1}));
    }
}

std::int64_t
KvCache::residentBytes() const
{
    return static_cast<std::int64_t>(
        (kWords_.size() + vWords_.size()) * sizeof(std::uint64_t) +
        (kScales_.size() + vScales_.size()) * sizeof(float));
}

void
KvCache::append(std::int64_t layer, std::int64_t pos,
                std::span<const std::int8_t> k, float kScale,
                std::span<const std::int8_t> v, float vScale)
{
    BBS_ASSERT(layer >= 0 && layer < cfg_.layers, "layer out of range");
    BBS_ASSERT(pos >= 0 && pos < cfg_.capacity, "KV cache overflow: pos ",
               pos, " at capacity ", cfg_.capacity);
    BBS_ASSERT(static_cast<std::int64_t>(k.size()) ==
                       cfg_.heads * cfg_.dHead &&
                   k.size() == v.size(),
               "append rows must hold heads*dHead values");

    for (std::int64_t h = 0; h < cfg_.heads; ++h) {
        std::int64_t base = planeIndex(layer, h);
        // K: the token's per-head k-vector is one packGroup — its eight
        // plane words ARE plane row `pos`'s word 0 (dHead <= 64; the
        // padded tail words stay zero).
        PackedGroup pg = packGroup(
            k.subspan(static_cast<std::size_t>(h * cfg_.dHead),
                      static_cast<std::size_t>(cfg_.dHead)));
        std::uint64_t *kBase = kWords_.data() + base * kBlockWords_;
        for (int b = 0; b < kWeightBits; ++b)
            kBase[(static_cast<std::int64_t>(b) * cfg_.capacity + pos) *
                  kColWords_] = pg.planes[static_cast<std::size_t>(b)];

        // V: set bit pos%64 of word pos/64 in each (bit, dim) row plane.
        // Storage starts zero and tokens only ever OR bits in, so no
        // read-modify cycle can disturb earlier tokens.
        std::uint64_t *vBase = vWords_.data() + base * vBlockWords_;
        std::int64_t word = pos >> 6;
        std::uint64_t bit = 1ull << (pos & 63);
        const std::int8_t *vRow =
            v.data() + static_cast<std::size_t>(h * cfg_.dHead);
        for (std::int64_t d = 0; d < cfg_.dHead; ++d) {
            std::uint8_t enc = static_cast<std::uint8_t>(vRow[d]);
            for (int b = 0; b < kWeightBits; ++b)
                if ((enc >> b) & 1u)
                    vBase[(static_cast<std::int64_t>(b) * cfg_.dHead + d) *
                              vColWords_ +
                          word] |= bit;
        }
    }
    kScales_[static_cast<std::size_t>(layer * cfg_.capacity + pos)] = kScale;
    vScales_[static_cast<std::size_t>(layer * cfg_.capacity + pos)] = vScale;
}

} // namespace bbs::llm
