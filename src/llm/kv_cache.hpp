/**
 * @file
 * Compressed-domain KV cache: per-(layer, head) key/value planes kept in
 * the engine's exact `BitSerialMatrix` layout, appended to incrementally.
 *
 * Each decode step packs ONLY the new token's K/V rows into the existing
 * bit planes — prior tokens are never repacked — and attention's
 * score/value matmuls then run over the same AND+popcount kernels as the
 * weight GEMMs, through `MatmulPlan::runRowBounded` bounded to the rows
 * that hold tokens.
 *
 * Layouts (per layer, per head; all plane stores 64-byte aligned,
 * zero-initialised, fixed capacity chosen at construction):
 *
 *  - **K store, token-major**: `[bit][capacity][colWords(dHead)]`, token t
 *    in plane row t. dHead <= 64, so a token's whole k-vector packs via
 *    one `packGroup` (8 plane words) and lands as 8 single-word writes —
 *    word-identical to what `BitSerialMatrix::pack` of the full token
 *    matrix would produce (the append fuzz test pins this). Scores are
 *    q [1, dHead] x K [T, dHead] with T = tokens so far.
 *  - **V store, dim-major**: `[bit][dHead][colWords(capacity)]`, token t
 *    at column t. Appending token t sets bit t%64 of word t/64 in each of
 *    the 8 x dHead row planes. The weighted-value product is then
 *    c [1, capacity] x V [dHead, capacity] with c's columns beyond T
 *    zero — zero activation bits AND away any column, so the fixed-width
 *    GEMM over the full capacity is exact.
 *
 * The views are created once over fixed-capacity storage
 * (`viewExternal` strides derive from the rows argument, so a view can
 * never shrink or move); growth is an append plus a release-store of the
 * committed length, never a repack or reallocation.
 *
 * Concurrency contract: one writer (the decode thread). Concurrent
 * reader threads may consume the committed prefix after an acquire of
 * `length()`: all K plane rows < length, and V plane words strictly below
 * length/64 (the in-fill V word is writer-private until it fills — a
 * word holds 64 tokens' bits, so readers bound column access to
 * `length() & ~63`). The decode thread itself reads its own writes and
 * has no such restriction.
 */
#ifndef BBS_LLM_KV_CACHE_HPP
#define BBS_LLM_KV_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "engine/session.hpp"
#include "gemm/bit_serial_matrix.hpp"

namespace bbs::llm {

/** Shape of one sequence's cache. */
struct KvCacheConfig
{
    std::int64_t layers = 0;
    std::int64_t heads = 0;
    std::int64_t dHead = 0;    ///< per-head width, 1..64
    std::int64_t capacity = 0; ///< max tokens; rounded up to 64 inside
};

/**
 * One sequence's K/V planes for every (layer, head), plus the
 * `MatmulPlan`s that score against them. Non-movable once constructed:
 * the plans hold views into the plane stores.
 */
class KvCache
{
  public:
    /** Allocates the full-capacity plane stores (zeroed) and creates the
     *  per-(layer, head) score/value plans through @p session. */
    KvCache(const engine::Session &session, const KvCacheConfig &cfg);

    KvCache(const KvCache &) = delete;
    KvCache &operator=(const KvCache &) = delete;

    std::int64_t layers() const { return cfg_.layers; }
    std::int64_t heads() const { return cfg_.heads; }
    std::int64_t dHead() const { return cfg_.dHead; }
    std::int64_t capacity() const { return cfg_.capacity; }

    /** Committed token count (acquire — pairs with commit's release). */
    std::int64_t
    length() const
    {
        return length_.load(std::memory_order_acquire);
    }

    /** Bytes resident in plane stores + scales (capacity, not length —
     *  the stores are fully allocated up front). */
    std::int64_t residentBytes() const;

    /**
     * Append token @p pos's K/V rows for one layer: @p k / @p v are the
     * head-major int8 rows (heads * dHead values), @p kScale / @p vScale
     * the row's dequantisation scales (one per layer-token, shared by
     * every head). @p pos must be length() + (tokens appended this step
     * so far) — the layer loop appends each layer at the same @p pos,
     * then commit() publishes. Only the decode thread calls this.
     */
    void append(std::int64_t layer, std::int64_t pos,
                std::span<const std::int8_t> k, float kScale,
                std::span<const std::int8_t> v, float vScale);

    /** Publish @p tokens committed tokens (release). */
    void
    commit(std::int64_t tokens)
    {
        length_.store(tokens, std::memory_order_release);
    }

    float
    kScale(std::int64_t layer, std::int64_t t) const
    {
        return kScales_[static_cast<std::size_t>(layer * cfg_.capacity + t)];
    }
    float
    vScale(std::int64_t layer, std::int64_t t) const
    {
        return vScales_[static_cast<std::size_t>(layer * cfg_.capacity + t)];
    }

    /**
     * Attention scores: @p q is the packed [1, dHead] query operand;
     * writes @p out [1, tokens] of integer dots against K rows
     * 0..tokens-1. Runs the tiled bit-serial kernel row-bounded over the
     * K view.
     */
    void
    scores(std::int64_t layer, std::int64_t head,
           const engine::PackedOperand &q, std::int64_t tokens,
           Int32Tensor &out) const
    {
        scorePlan(layer, head).runRowBounded(q, tokens, out);
    }

    /**
     * Weighted-value product: @p c is the packed [1, capacity] quantised
     * probability row (columns at and beyond the token count MUST be
     * zero); writes @p out [1, dHead].
     */
    void
    values(std::int64_t layer, std::int64_t head,
           const engine::PackedOperand &c, Int32Tensor &out) const
    {
        valuePlan(layer, head).runRowBounded(c, cfg_.dHead, out);
    }

    /** The K plane view [capacity, dHead] (fuzz tests compare its words
     *  against a from-scratch pack). */
    const BitSerialMatrix &
    kView(std::int64_t layer, std::int64_t head) const
    {
        return kViews_[static_cast<std::size_t>(planeIndex(layer, head))];
    }

    /** The V plane view [dHead, capacity]. */
    const BitSerialMatrix &
    vView(std::int64_t layer, std::int64_t head) const
    {
        return vViews_[static_cast<std::size_t>(planeIndex(layer, head))];
    }

  private:
    std::int64_t
    planeIndex(std::int64_t layer, std::int64_t head) const
    {
        return layer * cfg_.heads + head;
    }
    const engine::MatmulPlan &
    scorePlan(std::int64_t layer, std::int64_t head) const
    {
        return scorePlans_[static_cast<std::size_t>(
            planeIndex(layer, head))];
    }
    const engine::MatmulPlan &
    valuePlan(std::int64_t layer, std::int64_t head) const
    {
        return valuePlans_[static_cast<std::size_t>(
            planeIndex(layer, head))];
    }

    KvCacheConfig cfg_;
    std::int64_t kColWords_ = 0; ///< paddedColWords(dHead)
    std::int64_t vColWords_ = 0; ///< paddedColWords(capacity)
    std::int64_t kBlockWords_ = 0; ///< K words per (layer, head)
    std::int64_t vBlockWords_ = 0; ///< V words per (layer, head)
    AlignedVector<std::uint64_t> kWords_;
    AlignedVector<std::uint64_t> vWords_;
    std::vector<float> kScales_; ///< [layer * capacity + token]
    std::vector<float> vScales_;
    std::vector<BitSerialMatrix> kViews_; ///< [layer * heads + head]
    std::vector<BitSerialMatrix> vViews_;
    std::vector<engine::MatmulPlan> scorePlans_;
    std::vector<engine::MatmulPlan> valuePlans_;
    std::atomic<std::int64_t> length_{0};
};

} // namespace bbs::llm

#endif // BBS_LLM_KV_CACHE_HPP
