/**
 * @file
 * Transformer decode blocks over the bit-serial engine.
 *
 * Every projection in a block — attention QKV/output, the MLP pair, the
 * LM head — is a BBS-compressed `PackedOperand` with its own
 * `MatmulPlan`, all created from one `Session` (so they share the
 * session's tuning cache, and their runs share the per-thread scratch
 * arenas). Attention's score and weighted-value matmuls run over the
 * same bit-plane kernels, row-bounded against the `KvCache` views.
 * Softmax, RMSNorm, RoPE and the INT8 quantisation glue are plain
 * per-row float kernels.
 *
 * Numerics contract (what makes continuous batching safe): every float
 * operation — normalisation, quantisation scale choice, RoPE, softmax —
 * is computed per row from that row's values only, and the integer
 * matmuls are exact. A row's outputs therefore never depend on which
 * rows it was batched with: `forward()` over any batch composition is
 * bit-identical to single-row calls (generateReference() is that naive
 * oracle, and tests/test_llm.cpp pins the equality).
 *
 * The model's weights are synthetic (deterministic LCG fill) — the
 * subsystem under test is the serving machinery, not a trained network.
 */
#ifndef BBS_LLM_TRANSFORMER_HPP
#define BBS_LLM_TRANSFORMER_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/session.hpp"
#include "llm/kv_cache.hpp"

namespace bbs::llm {

/** Model shape + BBS operating point. */
struct TransformerConfig
{
    std::int64_t dModel = 128;
    std::int64_t nHeads = 2; ///< dHead = dModel/nHeads must be even, <= 64
    std::int64_t dFf = 256;
    std::int64_t nLayers = 2;
    std::int64_t vocab = 256;
    std::int64_t maxSeq = 256; ///< max tokens per sequence (KV capacity)
    /** BBS compression operating point for the projection weights. */
    std::int64_t groupSize = 32;
    int targetColumns = 3;
    /** Expected step-batch rows (the plans' ShapeHints). */
    std::int64_t expectedBatch = 16;
    std::uint64_t seed = 1;

    std::int64_t dHead() const { return dModel / nHeads; }
};

/** One (sequence, token) row of a step batch. */
struct StepRow
{
    KvCache *cache = nullptr;
    std::int32_t token = 0; ///< input token id
    std::int64_t pos = 0;   ///< this token's position in the sequence
    /** Produce `next` for this row (decode rows and the last prompt
     *  row; interior prefill rows skip the LM head entirely). */
    bool wantLogits = false;
    std::int32_t next = 0; ///< out: greedy next token
};

class TransformerModel
{
  public:
    /**
     * Per-caller step scratch: every buffer grows to its high-water mark
     * once, after which forward() performs no allocation (the zero-alloc
     * decode gate). Non-copyable: the packed-activation operands view
     * the workspace's own matrices.
     */
    struct Workspace
    {
        Workspace();
        Workspace(const Workspace &) = delete;
        Workspace &operator=(const Workspace &) = delete;

        std::vector<float> x;     ///< [R, dModel] residual stream
        std::vector<float> norm;  ///< [R, max(dModel, dFf)] normed / MLP
        std::vector<float> qf;    ///< [R, dModel] dequantised queries
        std::vector<float> kf;    ///< [R, dModel]
        std::vector<float> vf;    ///< [R, dModel]
        std::vector<float> attn;  ///< [R, dModel] head-concat outputs
        std::vector<float> rowScale; ///< [R] activation scales
        std::vector<float> gatherNorm; ///< [G, dModel] logit-row gather
        std::vector<std::int8_t> k8, v8, q8; ///< one row each
        std::vector<std::int8_t> c8;         ///< [capacity] prob row
        std::vector<float> probs;            ///< [T]
        std::vector<float> cFloat;           ///< [T]
        Int8Tensor a8;      ///< batched plan activations
        Int32Tensor y32;    ///< batched plan outputs
        Int32Tensor s32;    ///< [1, T] attention scores
        Int32Tensor o32;    ///< [1, dHead] weighted values
        Int32Tensor logits32;
        BitSerialMatrix qPacked; ///< [1, dHead] packed query
        BitSerialMatrix cPacked; ///< [1, capacity] packed prob row
        engine::PackedOperand qOp; ///< view over qPacked (built once)
        engine::PackedOperand cOp; ///< view over cPacked
    };

    explicit TransformerModel(const TransformerConfig &cfg,
                              engine::EngineConfig engineCfg = {});

    const TransformerConfig &config() const { return cfg_; }
    const engine::Session &session() const { return session_; }

    /** A sequence's cache, capacity clamped to maxSeq. */
    std::unique_ptr<KvCache> makeCache(std::int64_t capacity) const;

    /**
     * One step over a batch of rows. Rows belonging to the same cache
     * must appear in ascending position order with no gaps (a prefill
     * chunk); each row's K/V lands in its cache before its own attention
     * runs, and the new lengths are committed at the end. `next` is
     * filled for wantLogits rows.
     */
    void forward(std::span<StepRow> rows, Workspace &ws) const;

    /**
     * The naive unbatched oracle: token-at-a-time prefill, one decode
     * row per step, private cache and workspace. Returns @p maxNew
     * greedy tokens. Continuous batching must reproduce this exactly.
     */
    std::vector<std::int32_t>
    generateReference(std::span<const std::int32_t> prompt,
                      std::int64_t maxNew) const;

  private:
    struct LayerWeights
    {
        engine::MatmulPlan q, k, v, o, up, down;
        std::vector<float> gammaAttn, gammaMlp;
    };

    void attentionRow(const StepRow &row, std::int64_t layer,
                      Workspace &ws, std::int64_t r) const;

    TransformerConfig cfg_;
    engine::Session session_;
    Int8Tensor emb_; ///< [vocab, dModel] INT8 embedding table
    float embScale_ = 1.0f;
    float wScale_ = 1.0f; ///< shared projection dequant scale
    std::vector<LayerWeights> layers_;
    engine::MatmulPlan lmHead_;
    std::vector<float> gammaFinal_;
    std::vector<float> ropeCos_; ///< [maxSeq, dHead/2]
    std::vector<float> ropeSin_;
};

} // namespace bbs::llm

#endif // BBS_LLM_TRANSFORMER_HPP
