#include "sim/result.hpp"

namespace bbs {

namespace {

template <typename F>
double
sumOver(const std::vector<LayerSim> &layers, F f)
{
    double acc = 0.0;
    for (const auto &l : layers)
        acc += f(l);
    return acc;
}

} // namespace

double
ModelSim::totalCycles() const
{
    return sumOver(layers, [](const LayerSim &l) { return l.totalCycles; });
}

double
ModelSim::totalEnergyPj() const
{
    return sumOver(layers,
                   [](const LayerSim &l) { return l.totalEnergyPj(); });
}

double
ModelSim::offChipEnergyPj() const
{
    return sumOver(layers,
                   [](const LayerSim &l) { return l.offChipEnergyPj(); });
}

double
ModelSim::onChipEnergyPj() const
{
    return sumOver(layers,
                   [](const LayerSim &l) { return l.onChipEnergyPj(); });
}

double
ModelSim::usefulLaneCycles() const
{
    return sumOver(layers,
                   [](const LayerSim &l) { return l.usefulLaneCycles; });
}

double
ModelSim::intraPeStallLaneCycles() const
{
    return sumOver(layers, [](const LayerSim &l) {
        return l.intraPeStallLaneCycles;
    });
}

double
ModelSim::interPeStallLaneCycles() const
{
    return sumOver(layers, [](const LayerSim &l) {
        return l.interPeStallLaneCycles;
    });
}

} // namespace bbs
