/**
 * @file
 * Simulation results: per-layer and whole-model cycle/energy/stall
 * accounting, the common output format of every accelerator model.
 */
#ifndef BBS_SIM_RESULT_HPP
#define BBS_SIM_RESULT_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace bbs {

/** Result of simulating one layer (already scaled by layer repeat). */
struct LayerSim
{
    std::string layerName;

    double computeCycles = 0.0;
    double dramCycles = 0.0;
    /** max(compute, dram) — double-buffered overlap. */
    double totalCycles = 0.0;

    double dramBits = 0.0;
    double sramBytes = 0.0;

    /** Energy in pJ. */
    double dramEnergyPj = 0.0;
    double sramEnergyPj = 0.0;
    double coreEnergyPj = 0.0;

    /** Lane-cycle accounting for the Fig 15 breakdown. */
    double usefulLaneCycles = 0.0;
    double intraPeStallLaneCycles = 0.0;
    double interPeStallLaneCycles = 0.0;

    double offChipEnergyPj() const { return dramEnergyPj; }
    double onChipEnergyPj() const { return sramEnergyPj + coreEnergyPj; }
    double totalEnergyPj() const
    {
        return dramEnergyPj + sramEnergyPj + coreEnergyPj;
    }
};

/** Result of simulating a whole model on one accelerator. */
struct ModelSim
{
    std::string acceleratorName;
    std::string modelName;
    std::vector<LayerSim> layers;

    double totalCycles() const;
    double totalEnergyPj() const;
    double offChipEnergyPj() const;
    double onChipEnergyPj() const;
    double usefulLaneCycles() const;
    double intraPeStallLaneCycles() const;
    double interPeStallLaneCycles() const;

    /** Energy-delay product (pJ * cycles). */
    double edp() const { return totalEnergyPj() * totalCycles(); }
};

} // namespace bbs

#endif // BBS_SIM_RESULT_HPP
