/**
 * @file
 * Simulation configuration shared by every accelerator model, mirroring the
 * paper's methodology (§V-A): all accelerators are scaled to the same
 * number of bit-serial multiplier equivalents (one 8-bit multiplier = eight
 * bit-serial multipliers), with 256 KB + 256 KB on-chip SRAM and a DDR3
 * external memory.
 */
#ifndef BBS_SIM_CONFIG_HPP
#define BBS_SIM_CONFIG_HPP

#include <cstdint>

namespace bbs {

/** Array geometry and memory parameters. */
struct SimConfig
{
    /** Input windows processed in parallel (PE rows). */
    int rows = 16;
    /**
     * Total bit-serial multiplier budget. BitVert's 16x32 PE array with 8
     * lanes per PE = 4096; every baseline gets the same budget and derives
     * its own column count from its lanes-per-PE.
     */
    int totalBitSerialMultipliers = 4096;
    /**
     * Explicit PE-column override for the load-imbalance study (Fig 14/15);
     * 0 = derive from the multiplier budget.
     */
    int peColumnsOverride = 0;

    double frequencyGhz = 0.8;

    /** DDR3: ~12.8 GB/s at 800 MHz core clock. */
    double dramBytesPerCycle = 16.0;
    double dramPjPerBit = 20.0;

    /** 256 KB activation + 256 KB weight buffers (CACTI-7 class energy). */
    double sramPjPerByte = 1.2;

    std::int64_t weightBufferBytes = 256 * 1024;
    std::int64_t actBufferBytes = 256 * 1024;
};

} // namespace bbs

#endif // BBS_SIM_CONFIG_HPP
