#include "sim/memory_model.hpp"

namespace bbs {

double
dramCycles(const MemoryTraffic &t, const SimConfig &cfg)
{
    return t.totalDramBits() / 8.0 / cfg.dramBytesPerCycle;
}

double
dramEnergyPj(const MemoryTraffic &t, const SimConfig &cfg)
{
    return t.totalDramBits() * cfg.dramPjPerBit;
}

double
sramEnergyPj(const MemoryTraffic &t, const SimConfig &cfg)
{
    return t.sramBytes * cfg.sramPjPerByte;
}

} // namespace bbs
