/**
 * @file
 * Prepared workloads: the bridge from a materialized model (INT8 codes and
 * scales) to what the accelerator cycle models consume — including the
 * per-channel sensitivity split BitVert's global binary pruning produces.
 */
#ifndef BBS_SIM_PREPARED_MODEL_HPP
#define BBS_SIM_PREPARED_MODEL_HPP

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/bitplane.hpp"
#include "core/global_pruning.hpp"
#include "models/workload.hpp"

namespace bbs {

/**
 * Thread-safe, lazily filled cache of a layer's packed bit planes.
 *
 * Packing a layer costs one pass over its codes; the seven accelerator
 * cycle models all ask the same per-column questions, so the planes are
 * packed once per layer and shared. Copies and moves (construction *and*
 * assignment) reset the cache — the planes are re-derived from the new
 * owner's codes on demand — which keeps the surrounding structs freely
 * copyable without ever serving planes of stale weights. Concurrent
 * get() calls are safe; mutating the owning layer concurrently with
 * get() is not (as with any container).
 */
class PlaneCache
{
  public:
    PlaneCache() = default;
    PlaneCache(const PlaneCache &) noexcept {}
    PlaneCache(PlaneCache &&) noexcept {}
    PlaneCache &
    operator=(const PlaneCache &) noexcept
    {
        reset();
        return *this;
    }
    PlaneCache &
    operator=(PlaneCache &&) noexcept
    {
        reset();
        return *this;
    }

    /** Planes of @p codes at @p groupSize; packed on first call. */
    const BitPlaneTensor &get(const Int8Tensor &codes,
                              std::int64_t groupSize) const;

  private:
    void
    reset() noexcept
    {
        std::lock_guard<std::mutex> lock(mutex_);
        filled_ = false;
        planes_ = BitPlaneTensor();
    }

    mutable std::mutex mutex_;
    mutable bool filled_ = false;
    mutable BitPlaneTensor planes_;
};

/** One layer as consumed by accelerator cycle models. */
struct PreparedLayer
{
    LayerDesc desc;
    Int8Tensor codes;            ///< baseline INT8 codes (full precision)
    std::vector<float> scales;   ///< per-channel quantization scales
    std::vector<bool> sensitive; ///< BitVert sensitivity split (may be all
                                 ///< false when no pruning config given)
    /** Input-activation density (1 - sparsity); 0.5 post-ReLU, 1 else. */
    double activationDensity = 1.0;
    /**
     * Scale factor accounting for channel sampling (desc channels /
     * materialized channels) so cycle totals reflect the full layer.
     */
    double channelScale = 1.0;

    /**
     * Packed per-channel bit planes of @ref codes at the PE group size
     * (16 weights for every modeled design). Packed once, shared by all
     * accelerator models instead of per-model re-extraction.
     */
    const BitPlaneTensor &
    packedPlanes(std::int64_t groupSize = 16) const
    {
        return planeCache_.get(codes, groupSize);
    }

  private:
    PlaneCache planeCache_;
};

/** A prepared model plus the BBS pruning configuration to apply. */
struct PreparedModel
{
    ModelDesc desc;
    std::vector<PreparedLayer> layers;
    GlobalPruneConfig bbsConfig; ///< used by the BitVert model
};

/**
 * Prepare a materialized model: computes activation densities, channel
 * scaling, and (when @p bbsCfg is non-null) the sensitive-channel split of
 * Algorithm 2.
 */
PreparedModel prepareModel(const MaterializedModel &model,
                           const GlobalPruneConfig *bbsCfg = nullptr);

} // namespace bbs

#endif // BBS_SIM_PREPARED_MODEL_HPP
