/**
 * @file
 * Prepared workloads: the bridge from a materialized model (INT8 codes and
 * scales) to what the accelerator cycle models consume — including the
 * per-channel sensitivity split BitVert's global binary pruning produces.
 */
#ifndef BBS_SIM_PREPARED_MODEL_HPP
#define BBS_SIM_PREPARED_MODEL_HPP

#include <cstdint>
#include <vector>

#include "core/global_pruning.hpp"
#include "models/workload.hpp"

namespace bbs {

/** One layer as consumed by accelerator cycle models. */
struct PreparedLayer
{
    LayerDesc desc;
    Int8Tensor codes;            ///< baseline INT8 codes (full precision)
    std::vector<float> scales;   ///< per-channel quantization scales
    std::vector<bool> sensitive; ///< BitVert sensitivity split (may be all
                                 ///< false when no pruning config given)
    /** Input-activation density (1 - sparsity); 0.5 post-ReLU, 1 else. */
    double activationDensity = 1.0;
    /**
     * Scale factor accounting for channel sampling (desc channels /
     * materialized channels) so cycle totals reflect the full layer.
     */
    double channelScale = 1.0;
};

/** A prepared model plus the BBS pruning configuration to apply. */
struct PreparedModel
{
    ModelDesc desc;
    std::vector<PreparedLayer> layers;
    GlobalPruneConfig bbsConfig; ///< used by the BitVert model
};

/**
 * Prepare a materialized model: computes activation densities, channel
 * scaling, and (when @p bbsCfg is non-null) the sensitive-channel split of
 * Algorithm 2.
 */
PreparedModel prepareModel(const MaterializedModel &model,
                           const GlobalPruneConfig *bbsCfg = nullptr);

} // namespace bbs

#endif // BBS_SIM_PREPARED_MODEL_HPP
