#include "sim/prepared_model.hpp"

#include "common/logging.hpp"

namespace bbs {

const BitPlaneTensor &
PlaneCache::get(const Int8Tensor &codes, std::int64_t groupSize) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!filled_) {
        planes_ = BitPlaneTensor::pack(codes, groupSize);
        filled_ = true;
    }
    BBS_REQUIRE(planes_.groupSize() == groupSize,
                "plane cache requested at group size ", groupSize,
                " but packed at ", planes_.groupSize());
    return planes_;
}

PreparedModel
prepareModel(const MaterializedModel &model, const GlobalPruneConfig *bbsCfg)
{
    PreparedModel out;
    out.desc = model.desc;
    if (bbsCfg)
        out.bbsConfig = *bbsCfg;

    std::vector<std::vector<bool>> sensitive;
    if (bbsCfg) {
        sensitive = selectSensitiveChannels(
            [&] {
                std::vector<PrunableLayer> pls;
                for (const auto &l : model.layers) {
                    PrunableLayer pl;
                    pl.name = l.desc.name;
                    pl.codes = l.weights.values;
                    pl.scales = l.weights.scales;
                    pls.push_back(std::move(pl));
                }
                return pls;
            }(),
            bbsCfg->beta, bbsCfg->channelsParallel);
    }

    for (std::size_t i = 0; i < model.layers.size(); ++i) {
        const auto &ml = model.layers[i];
        PreparedLayer pl;
        pl.desc = ml.desc;
        pl.codes = ml.weights.values;
        pl.scales = ml.weights.scales;
        pl.sensitive =
            bbsCfg ? sensitive[i]
                   : std::vector<bool>(
                         static_cast<std::size_t>(
                             ml.weights.values.shape().dim(0)),
                         false);
        pl.activationDensity = ml.desc.reluActivations ? 0.5 : 1.0;
        pl.channelScale =
            static_cast<double>(ml.desc.weightShape.dim(0)) /
            static_cast<double>(ml.weights.values.shape().dim(0));
        out.layers.push_back(std::move(pl));
    }
    return out;
}

} // namespace bbs
