/**
 * @file
 * Dataflow helpers shared by all accelerator cycle models: lock-step
 * wavefront aggregation across PE columns (the source of inter-PE stalls)
 * and tiling arithmetic for the output-stationary array (§IV-D).
 */
#ifndef BBS_SIM_DATAFLOW_HPP
#define BBS_SIM_DATAFLOW_HPP

#include <cstdint>
#include <vector>

namespace bbs {

/** Latency and lane activity of one PE processing one weight group. */
struct GroupWork
{
    double latency = 0.0;          ///< cycles the PE occupies
    double usefulLaneCycles = 0.0; ///< effectual bit/value operations
    /** idle lane-cycles while the PE itself is busy. */
    double intraStallLaneCycles = 0.0;
};

/** Aggregate of the lock-step execution of a whole layer. */
struct WavefrontAggregate
{
    double cycles = 0.0;
    double usefulLaneCycles = 0.0;
    double intraStallLaneCycles = 0.0;
    double interStallLaneCycles = 0.0;
};

/**
 * Run the lock-step wavefront schedule: channel c is assigned to PE column
 * (c % columns); at each step every active column processes its next
 * group, and the array advances when the slowest column finishes.
 *
 * @param workPerChannel  [channel][groupIdx] per-group work items
 * @param columns         PE columns operating in lock-step
 * @param lanes           bit-serial lanes per PE (for stall accounting)
 */
WavefrontAggregate
aggregateWavefronts(const std::vector<std::vector<GroupWork>> &workPerChannel,
                    int columns, int lanes);

/** ceil(a / b) for positive integers. */
inline std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace bbs

#endif // BBS_SIM_DATAFLOW_HPP
