#include "sim/dataflow.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bbs {

WavefrontAggregate
aggregateWavefronts(
    const std::vector<std::vector<GroupWork>> &workPerChannel, int columns,
    int lanes)
{
    BBS_REQUIRE(columns >= 1, "need at least one PE column");
    WavefrontAggregate agg;
    std::int64_t channels =
        static_cast<std::int64_t>(workPerChannel.size());

    for (std::int64_t tileBase = 0; tileBase < channels;
         tileBase += columns) {
        std::int64_t tileEnd =
            std::min<std::int64_t>(tileBase + columns, channels);

        // Longest group sequence in this channel tile.
        std::size_t maxGroups = 0;
        for (std::int64_t c = tileBase; c < tileEnd; ++c)
            maxGroups = std::max(
                maxGroups,
                workPerChannel[static_cast<std::size_t>(c)].size());

        for (std::size_t g = 0; g < maxGroups; ++g) {
            // Wavefront latency = slowest column in the tile.
            double wave = 0.0;
            for (std::int64_t c = tileBase; c < tileEnd; ++c) {
                const auto &wc =
                    workPerChannel[static_cast<std::size_t>(c)];
                if (g < wc.size())
                    wave = std::max(wave, wc[g].latency);
            }
            agg.cycles += wave;
            for (std::int64_t c = tileBase; c < tileEnd; ++c) {
                const auto &wc =
                    workPerChannel[static_cast<std::size_t>(c)];
                if (g < wc.size()) {
                    const GroupWork &w = wc[g];
                    agg.usefulLaneCycles += w.usefulLaneCycles;
                    agg.intraStallLaneCycles += w.intraStallLaneCycles;
                    agg.interStallLaneCycles +=
                        (wave - w.latency) * lanes;
                } else {
                    agg.interStallLaneCycles += wave * lanes;
                }
            }
        }
    }
    return agg;
}

} // namespace bbs
