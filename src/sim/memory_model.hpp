/**
 * @file
 * External-DRAM and on-chip-SRAM cost models. Parameterized by the
 * constants in SimConfig (DDR3 energy per bit, CACTI-class SRAM energy per
 * byte); consumed by every accelerator's layer simulation.
 */
#ifndef BBS_SIM_MEMORY_MODEL_HPP
#define BBS_SIM_MEMORY_MODEL_HPP

#include "sim/config.hpp"

namespace bbs {

/** Memory traffic of one simulated layer. */
struct MemoryTraffic
{
    double weightBits = 0.0; ///< encoded weight footprint fetched from DRAM
    double inputActBits = 0.0;
    double outputActBits = 0.0;
    /** SRAM bytes moved (weight re-reads per tile + activation staging). */
    double sramBytes = 0.0;

    double totalDramBits() const
    {
        return weightBits + inputActBits + outputActBits;
    }
};

/** DRAM transfer latency in core cycles for the given traffic. */
double dramCycles(const MemoryTraffic &t, const SimConfig &cfg);

/** DRAM energy in pJ. */
double dramEnergyPj(const MemoryTraffic &t, const SimConfig &cfg);

/** SRAM energy in pJ. */
double sramEnergyPj(const MemoryTraffic &t, const SimConfig &cfg);

} // namespace bbs

#endif // BBS_SIM_MEMORY_MODEL_HPP
