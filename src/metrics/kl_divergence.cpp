#include "metrics/kl_divergence.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace bbs {

double
klDivergence(const Histogram &p, const Histogram &q, double epsilon)
{
    BBS_REQUIRE(p.lo() == q.lo() && p.hi() == q.hi(),
                "histogram ranges differ");
    BBS_REQUIRE(p.total() > 0 && q.total() > 0, "empty histogram");

    // Normalize with smoothing mass so both are proper distributions.
    int levels = p.hi() - p.lo() + 1;
    double zP = 1.0 + epsilon * levels;
    double zQ = 1.0 + epsilon * levels;

    double kl = 0.0;
    for (std::int32_t v = p.lo(); v <= p.hi(); ++v) {
        double pp = (p.probability(v) + epsilon) / zP;
        double qq = (q.probability(v) + epsilon) / zQ;
        if (pp > 0.0)
            kl += pp * std::log(pp / qq);
    }
    return kl;
}

double
klDivergence(const Int8Tensor &original, const Int8Tensor &compressed,
             double epsilon)
{
    Histogram p(-128, 127);
    Histogram q(-128, 127);
    p.addAll(original.data());
    q.addAll(compressed.data());
    return klDivergence(p, q, epsilon);
}

} // namespace bbs
