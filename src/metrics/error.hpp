/**
 * @file
 * Element-wise error metrics between tensors: MSE (the binary-pruning
 * objective in Figs 4/5 and Algorithm 1), max absolute error, and cosine
 * similarity.
 */
#ifndef BBS_METRICS_ERROR_HPP
#define BBS_METRICS_ERROR_HPP

#include "tensor/tensor.hpp"

namespace bbs {

/** Mean squared error between same-shape tensors. */
double mse(const Int8Tensor &a, const Int8Tensor &b);
double mse(const FloatTensor &a, const FloatTensor &b);

/** Maximum absolute element-wise error. */
double maxAbsError(const Int8Tensor &a, const Int8Tensor &b);

/** Cosine similarity of flattened tensors; 1.0 for identical directions. */
double cosineSimilarity(const FloatTensor &a, const FloatTensor &b);

} // namespace bbs

#endif // BBS_METRICS_ERROR_HPP
