#include "metrics/error.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace bbs {

namespace {

/** Elements per reduction chunk (big enough to amortize thread hand-off). */
constexpr std::int64_t kReduceChunk = 1 << 16;

template <typename T>
double
mseImpl(const Tensor<T> &a, const Tensor<T> &b)
{
    BBS_REQUIRE(a.shape() == b.shape(), "mse: shape mismatch ",
                a.shape().toString(), " vs ", b.shape().toString());
    if (a.numel() == 0)
        return 0.0;
    double acc = parallelReduce<double>(
        a.numel(), kReduceChunk, 0.0,
        [&](std::int64_t begin, std::int64_t end) {
            double s = 0.0;
            for (std::int64_t i = begin; i < end; ++i) {
                double d = static_cast<double>(a.flat(i)) -
                           static_cast<double>(b.flat(i));
                s += d * d;
            }
            return s;
        },
        [](double x, double y) { return x + y; });
    return acc / static_cast<double>(a.numel());
}

} // namespace

double
mse(const Int8Tensor &a, const Int8Tensor &b)
{
    return mseImpl(a, b);
}

double
mse(const FloatTensor &a, const FloatTensor &b)
{
    return mseImpl(a, b);
}

double
maxAbsError(const Int8Tensor &a, const Int8Tensor &b)
{
    BBS_REQUIRE(a.shape() == b.shape(), "maxAbsError: shape mismatch");
    return parallelReduce<double>(
        a.numel(), kReduceChunk, 0.0,
        [&](std::int64_t begin, std::int64_t end) {
            double m = 0.0;
            for (std::int64_t i = begin; i < end; ++i) {
                double d = std::abs(static_cast<double>(a.flat(i)) -
                                    static_cast<double>(b.flat(i)));
                m = std::max(m, d);
            }
            return m;
        },
        [](double x, double y) { return std::max(x, y); });
}

double
cosineSimilarity(const FloatTensor &a, const FloatTensor &b)
{
    BBS_REQUIRE(a.shape() == b.shape(), "cosineSimilarity: shape mismatch");
    struct Sums
    {
        double dot = 0.0, na = 0.0, nb = 0.0;
    };
    Sums s = parallelReduce<Sums>(
        a.numel(), kReduceChunk, Sums{},
        [&](std::int64_t begin, std::int64_t end) {
            Sums p;
            for (std::int64_t i = begin; i < end; ++i) {
                double x = a.flat(i), y = b.flat(i);
                p.dot += x * y;
                p.na += x * x;
                p.nb += y * y;
            }
            return p;
        },
        [](Sums x, Sums y) {
            return Sums{x.dot + y.dot, x.na + y.na, x.nb + y.nb};
        });
    if (s.na == 0.0 || s.nb == 0.0)
        return s.na == s.nb ? 1.0 : 0.0;
    return s.dot / (std::sqrt(s.na) * std::sqrt(s.nb));
}

} // namespace bbs
