#include "metrics/error.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace bbs {

namespace {

template <typename T>
double
mseImpl(const Tensor<T> &a, const Tensor<T> &b)
{
    BBS_REQUIRE(a.shape() == b.shape(), "mse: shape mismatch ",
                a.shape().toString(), " vs ", b.shape().toString());
    if (a.numel() == 0)
        return 0.0;
    double acc = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        double d = static_cast<double>(a.flat(i)) -
                   static_cast<double>(b.flat(i));
        acc += d * d;
    }
    return acc / static_cast<double>(a.numel());
}

} // namespace

double
mse(const Int8Tensor &a, const Int8Tensor &b)
{
    return mseImpl(a, b);
}

double
mse(const FloatTensor &a, const FloatTensor &b)
{
    return mseImpl(a, b);
}

double
maxAbsError(const Int8Tensor &a, const Int8Tensor &b)
{
    BBS_REQUIRE(a.shape() == b.shape(), "maxAbsError: shape mismatch");
    double m = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        double d = std::abs(static_cast<double>(a.flat(i)) -
                            static_cast<double>(b.flat(i)));
        m = std::max(m, d);
    }
    return m;
}

double
cosineSimilarity(const FloatTensor &a, const FloatTensor &b)
{
    BBS_REQUIRE(a.shape() == b.shape(), "cosineSimilarity: shape mismatch");
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        double x = a.flat(i), y = b.flat(i);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if (na == 0.0 || nb == 0.0)
        return na == nb ? 1.0 : 0.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

} // namespace bbs
