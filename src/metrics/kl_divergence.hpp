/**
 * @file
 * KL divergence between weight distributions, the paper's metric for how
 * well a compression scheme preserves the original tensor statistics
 * (Fig 1, Fig 6).
 */
#ifndef BBS_METRICS_KL_DIVERGENCE_HPP
#define BBS_METRICS_KL_DIVERGENCE_HPP

#include "metrics/histogram.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/**
 * KL(P || Q) over discrete per-level histograms with additive smoothing.
 *
 * Zero bins in Q would make the divergence infinite whenever compression
 * eliminates a quantization level P still uses — exactly the phenomenon the
 * paper highlights for zero-bit-only pruning — so a small epsilon keeps the
 * value finite while still heavily penalizing lost levels.
 *
 * @param p  reference distribution (original weights)
 * @param q  approximating distribution (compressed weights)
 * @param epsilon  smoothing probability mass per level
 */
double klDivergence(const Histogram &p, const Histogram &q,
                    double epsilon = 1e-10);

/** Convenience: histogram both INT8 tensors over [-128, 127] and compare. */
double klDivergence(const Int8Tensor &original,
                    const Int8Tensor &compressed, double epsilon = 1e-10);

} // namespace bbs

#endif // BBS_METRICS_KL_DIVERGENCE_HPP
