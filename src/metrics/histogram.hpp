/**
 * @file
 * Discrete histograms over integer-valued tensors, the substrate of the
 * paper's KL-divergence comparisons (Fig 1, Fig 6).
 */
#ifndef BBS_METRICS_HISTOGRAM_HPP
#define BBS_METRICS_HISTOGRAM_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace bbs {

/**
 * Histogram over the integer range [lo, hi] with one bin per integer.
 *
 * Quantized INT8 weights take at most 256 distinct values, so an exact
 * per-level histogram (rather than a binned approximation) is both cheap
 * and what the paper's "quantization levels" discussion is about.
 */
class Histogram
{
  public:
    Histogram(std::int32_t lo, std::int32_t hi);

    void add(std::int32_t v);
    void addAll(std::span<const std::int8_t> vs);

    std::int64_t count(std::int32_t v) const;
    std::int64_t total() const { return total_; }

    /** Probability of level @p v (count/total). */
    double probability(std::int32_t v) const;

    /** Number of levels with a non-zero count ("quantization levels used"). */
    int levelsUsed() const;

    std::int32_t lo() const { return lo_; }
    std::int32_t hi() const { return hi_; }

  private:
    std::int32_t lo_;
    std::int32_t hi_;
    std::vector<std::int64_t> bins_;
    std::int64_t total_ = 0;
};

} // namespace bbs

#endif // BBS_METRICS_HISTOGRAM_HPP
