#include "metrics/histogram.hpp"

#include "common/logging.hpp"

namespace bbs {

Histogram::Histogram(std::int32_t lo, std::int32_t hi)
    : lo_(lo), hi_(hi),
      bins_(static_cast<std::size_t>(hi - lo + 1), 0)
{
    BBS_REQUIRE(hi >= lo, "histogram range inverted: [", lo, ", ", hi, "]");
}

void
Histogram::add(std::int32_t v)
{
    BBS_REQUIRE(v >= lo_ && v <= hi_, "value ", v, " outside histogram [",
                lo_, ", ", hi_, "]");
    ++bins_[static_cast<std::size_t>(v - lo_)];
    ++total_;
}

void
Histogram::addAll(std::span<const std::int8_t> vs)
{
    for (std::int8_t v : vs)
        add(v);
}

std::int64_t
Histogram::count(std::int32_t v) const
{
    if (v < lo_ || v > hi_)
        return 0;
    return bins_[static_cast<std::size_t>(v - lo_)];
}

double
Histogram::probability(std::int32_t v) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(v)) / static_cast<double>(total_);
}

int
Histogram::levelsUsed() const
{
    int used = 0;
    for (std::int64_t c : bins_)
        used += (c > 0);
    return used;
}

} // namespace bbs
