#include "gemm/compressed_gemm.hpp"

#include <algorithm>
#include <bit>

#include "common/aligned.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "gemm/gemm.hpp"
#include "simd/simd.hpp"

namespace bbs {

CompressedRowPlanes
CompressedRowPlanes::prepare(std::span<const CompressedGroup> groups,
                             std::span<const std::int64_t> rowOffsets,
                             std::int64_t cols, std::int64_t groupSize)
{
    BBS_REQUIRE(!rowOffsets.empty(), "rowOffsets must have rows+1 entries");
    BBS_REQUIRE(groupSize >= 1 && groupSize <= 64,
                "group size must be 1..64, got ", groupSize);
    CompressedRowPlanes out;
    out.rows_ = static_cast<std::int64_t>(rowOffsets.size()) - 1;
    out.cols_ = cols;
    out.groupSize_ = groupSize;
    out.groupsPerRow_ = (cols + groupSize - 1) / groupSize;
    std::size_t total = static_cast<std::size_t>(out.rows_ *
                                                 out.groupsPerRow_);
    out.packed_.resize(total);
    out.shifts_.resize(total);
    out.constants_.resize(total);
    for (std::int64_t o = 0; o < out.rows_; ++o) {
        std::int64_t begin = rowOffsets[static_cast<std::size_t>(o)];
        std::int64_t end = rowOffsets[static_cast<std::size_t>(o) + 1];
        BBS_REQUIRE(end - begin == out.groupsPerRow_, "row ", o, " has ",
                    end - begin, " groups, expected ", out.groupsPerRow_);
        for (std::int64_t g = 0; g < out.groupsPerRow_; ++g) {
            const CompressedGroup &cg =
                groups[static_cast<std::size_t>(begin + g)];
            BBS_REQUIRE(static_cast<int>(cg.stored.size()) ==
                            out.groupMembers(g),
                        "row ", o, " group ", g, " holds ",
                        cg.stored.size(), " weights, expected ",
                        out.groupMembers(g));
            std::size_t idx =
                static_cast<std::size_t>(o * out.groupsPerRow_ + g);
            out.packed_[idx] = packGroup(cg.stored, cg.storedBits);
            out.shifts_[idx] =
                static_cast<std::int8_t>(cg.prunedColumns);
            out.constants_[idx] = cg.meta.constant;
        }
    }
    return out;
}

CompressedRowPlanes
CompressedRowPlanes::prepare(const CompressedTensor &ct)
{
    std::int64_t rows = ct.shape().dim(0);
    std::int64_t cols = ct.shape().channelSize();
    BBS_REQUIRE(cols % ct.groupSize() == 0,
                "channel size ", cols, " not a multiple of group size ",
                ct.groupSize(), "; groups would span rows");
    std::vector<std::int64_t> offsets(static_cast<std::size_t>(rows) + 1);
    std::int64_t groupsPerRow = cols / ct.groupSize();
    for (std::int64_t o = 0; o <= rows; ++o)
        offsets[static_cast<std::size_t>(o)] = o * groupsPerRow;
    return prepare(ct.groups(), offsets, cols, ct.groupSize());
}

CompressedRowPlanes
CompressedRowPlanes::viewExternal(const PackedGroup *packed,
                                  const std::int8_t *shifts,
                                  const std::int32_t *constants,
                                  std::int64_t rows, std::int64_t cols,
                                  std::int64_t groupSize)
{
    BBS_REQUIRE(packed != nullptr && shifts != nullptr &&
                    constants != nullptr,
                "viewExternal needs non-null array bases");
    BBS_REQUIRE(rows > 0 && cols > 0, "viewExternal needs a positive shape");
    BBS_REQUIRE(groupSize >= 1 && groupSize <= 64,
                "group size must be 1..64, got ", groupSize);
    BBS_REQUIRE(reinterpret_cast<std::uintptr_t>(packed) %
                        alignof(PackedGroup) ==
                    0,
                "viewExternal group base must be cache-line aligned");
    CompressedRowPlanes out;
    out.rows_ = rows;
    out.cols_ = cols;
    out.groupSize_ = groupSize;
    out.groupsPerRow_ = (cols + groupSize - 1) / groupSize;
    out.viewPacked_ = packed;
    out.viewShifts_ = shifts;
    out.viewConstants_ = constants;
    return out;
}

namespace {

/**
 * Stored-column contribution of one group to one sample: the whole-group
 * 8-plane weighted window reduction, dispatched (for each stored weight
 * plane b and activation bit plane c, popcount(planes[b] AND aw[c])
 * weighs columnWeight(b, bits) * 2^c, the activation sign plane
 * negative).
 */
inline std::int64_t
groupDot(const SimdKernels &simd, const PackedGroup &pg,
         const std::uint64_t *aw)
{
    return simd.compressedGroupDot(pg.planes.data(), pg.bits, aw);
}

} // namespace

double
CompressedRowPlanes::meanStoredBits() const
{
    if (rows_ == 0 || groupsPerRow_ == 0)
        return 0.0;
    double bits = 0.0, weights = 0.0;
    for (const PackedGroup &pg : packedGroups()) {
        bits += static_cast<double>(pg.bits) * pg.size;
        weights += static_cast<double>(pg.size);
    }
    return weights > 0.0 ? bits / weights : 0.0;
}

Int8Tensor
CompressedRowPlanes::decompress() const
{
    BBS_REQUIRE(rows_ > 0 && cols_ > 0, "nothing to decompress");
    Int8Tensor out(Shape{rows_, cols_});
    std::vector<std::int8_t> stored;
    for (std::int64_t o = 0; o < rows_; ++o) {
        for (std::int64_t g = 0; g < groupsPerRow_; ++g) {
            const PackedGroup &pg = packedGroup(o, g);
            stored.resize(static_cast<std::size_t>(pg.size));
            unpackGroup(pg, stored);
            std::int64_t begin = groupBegin(g);
            int sh = shift(o, g);
            std::int32_t c = constant(o, g);
            for (int i = 0; i < pg.size; ++i)
                out.at(o, begin + i) = static_cast<std::int8_t>(
                    (static_cast<std::int32_t>(
                         stored[static_cast<std::size_t>(i)])
                     << sh) +
                    c);
        }
    }
    return out;
}

void
detail::gemmCompressedKernel(const CompressedRowPlanes &weights,
                             const BitSerialMatrix &activations,
                             Int32Tensor &out,
                             engine::ScratchArena &scratch,
                             const engine::TuningParams &tuning)
{
    BBS_REQUIRE(activations.cols() == weights.cols(),
                "GEMM depth mismatch: ", activations.cols(), " vs ",
                weights.cols());
    BBS_REQUIRE(activations.cols() <= kMaxGemmDepth,
                "GEMM depth ", activations.cols(),
                " can overflow the INT32 outputs (max ", kMaxGemmDepth,
                ")");
    std::int64_t n = activations.rows();
    std::int64_t k = weights.rows();
    std::int64_t numGroups = weights.groupsPerRow();
    detail::ensureOutputShape(out, n, k);

    // Stage 1: extract each group's activation window planes and sum of
    // activations once per (sample, group); every weight row reuses them.
    // The caller's arena (normally the calling thread's
    // engine::ScratchArena) grows to its high-water mark once, so a
    // serving worker draining batch after batch pays no per-batch
    // allocation; its window store is 64-byte aligned so each group's
    // 8-plane window (exactly one cache line) is loaded by the SIMD
    // kernels without straddling lines. CRITICAL: parallelFor workers are
    // fresh threads, and a lambda body naming a thread_local arena would
    // resolve to the *worker's own* (empty) instance — so hand the
    // workers raw pointers into the caller's buffers; they touch only
    // disjoint slices.
    scratch.reserve(n, numGroups);
    std::uint64_t *const windows = scratch.windows.data();
    std::int64_t *const sums = scratch.sums.data();
    const SimdKernels &simd = simdKernels(); // resolved once per GEMM
    parallelFor(n, [&](std::int64_t r) {
        std::uint64_t *awRow = windows + r * numGroups * kWeightBits;
        for (std::int64_t g = 0; g < numGroups; ++g) {
            std::int64_t begin = weights.groupBegin(g);
            int len = weights.groupMembers(g);
            std::uint64_t *aw = awRow + g * kWeightBits;
            for (int c = 0; c < kWeightBits; ++c)
                aw[c] = activations.window(c, r, begin, len);
        }
        // One batched 8-plane weighted reduction over the whole row of
        // windows — the per-window call would be latency-bound.
        simd.weightedPlaneSumBatch(awRow, numGroups,
                                   sums + r * numGroups);
    }, 4);

    // Stage 2: weight-row tiles of `tile` rows, each streaming the whole
    // grouped batch; rows in a tile share every activation window load.
    // tile == 2 (the default, and the old hard-coded row-pair shape)
    // keeps its two accumulators in registers; other widths run the
    // generic accumulator array. Output rows are written by exactly one
    // task either way, and the per-row arithmetic is identical for every
    // width — the tile is a traversal-order knob the autotuner sweeps.
    std::int64_t tile =
        std::clamp<std::int64_t>(tuning.compressedRowTile, 1, 8);
    std::int64_t rowTiles = (k + tile - 1) / tile;
    parallelFor(rowTiles, [&](std::int64_t t) {
        std::int64_t o0 = tile * t;
        std::int64_t oEnd = std::min(o0 + tile, k);
        if (oEnd - o0 == 2) {
            std::int64_t o1 = o0 + 1;
            for (std::int64_t r = 0; r < n; ++r) {
                const std::uint64_t *aw =
                    windows + r * numGroups * kWeightBits;
                const std::int64_t *sumA = sums + r * numGroups;
                std::int64_t acc0 = 0, acc1 = 0;
                for (std::int64_t g = 0; g < numGroups;
                     ++g, aw += kWeightBits) {
                    acc0 +=
                        (groupDot(simd, weights.packedGroup(o0, g), aw)
                         << weights.shift(o0, g)) +
                        static_cast<std::int64_t>(
                            weights.constant(o0, g)) *
                            sumA[g];
                    acc1 +=
                        (groupDot(simd, weights.packedGroup(o1, g), aw)
                         << weights.shift(o1, g)) +
                        static_cast<std::int64_t>(
                            weights.constant(o1, g)) *
                            sumA[g];
                }
                out.at(r, o0) = static_cast<std::int32_t>(acc0);
                out.at(r, o1) = static_cast<std::int32_t>(acc1);
            }
            return;
        }
        std::int64_t acc[8];
        for (std::int64_t r = 0; r < n; ++r) {
            const std::uint64_t *aw =
                windows + r * numGroups * kWeightBits;
            const std::int64_t *sumA = sums + r * numGroups;
            for (std::int64_t j = 0; j < oEnd - o0; ++j)
                acc[j] = 0;
            for (std::int64_t g = 0; g < numGroups;
                 ++g, aw += kWeightBits) {
                for (std::int64_t o = o0; o < oEnd; ++o)
                    acc[o - o0] +=
                        (groupDot(simd, weights.packedGroup(o, g), aw)
                         << weights.shift(o, g)) +
                        static_cast<std::int64_t>(weights.constant(o, g)) *
                            sumA[g];
            }
            for (std::int64_t o = o0; o < oEnd; ++o)
                out.at(r, o) = static_cast<std::int32_t>(acc[o - o0]);
        }
    }, 1);
}

} // namespace bbs
