/**
 * @file
 * Dense bit-serial GEMM over packed bit planes.
 *
 * Both operands are `BitSerialMatrix` packings sharing the depth
 * dimension (weights [K, C], activations [N, C]); the product is computed
 * entirely in the bit domain: for every pair of bit planes (b, c),
 * AND+popcount over the 64-column words contributes
 * columnWeight(b) * columnWeight(c) * popcount to the accumulator
 * (gemmbitserial's algorithm). The kernel is cache-blocked over depth
 * words and register-tiled 2x1x2 — two activation rows x one depth word x
 * two weight rows share four plane loads per step — and parallelized over
 * activation-row tiles with parallelFor.
 *
 * `gemmReferenceBatch` is the naive per-element loop the test suite pins
 * the kernel against, exactly; `gemmReference` is the [C, N]-orientation
 * form the functional BitVert array simulation checks against (moved here
 * from accel/ so every GEMM reference lives beside the engine).
 */
#ifndef BBS_GEMM_GEMM_HPP
#define BBS_GEMM_GEMM_HPP

#include "gemm/bit_serial_matrix.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/**
 * Maximum GEMM depth the INT32 output tensor supports without overflow:
 * the worst-case |dot| is depth * 128 * 128, so depth must stay below
 * 2^17 for the accumulator to fit (the engine kernels enforce this
 * rather than truncate silently — it also keeps the GEMM forward path
 * provably bit-identical to the int64 per-dot reference).
 */
inline constexpr std::int64_t kMaxGemmDepth = (1ll << 17) - 1;

/**
 * Naive integer GEMM reference: outputs [K, N] of
 * weights [K, C] x activations [C, N] (column-vector orientation used by
 * the functional accelerator simulations).
 */
Int32Tensor gemmReference(const Int8Tensor &weights,
                          const Int8Tensor &activations);

/**
 * Naive batched reference in the inference orientation: activations
 * [N, C] (one sample per row) x weights [K, C] -> outputs [N, K].
 */
Int32Tensor gemmReferenceBatch(const Int8Tensor &activations,
                               const Int8Tensor &weights);

/**
 * Bit-serial AND+popcount GEMM: activations [N, C] x weights [K, C],
 * both packed, -> outputs [N, K]. Exactly equals gemmReferenceBatch on
 * the unpacked operands.
 */
Int32Tensor gemmBitSerial(const BitSerialMatrix &activations,
                          const BitSerialMatrix &weights);

} // namespace bbs

#endif // BBS_GEMM_GEMM_HPP
