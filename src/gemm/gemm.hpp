/**
 * @file
 * Dense bit-serial GEMM over packed bit planes.
 *
 * Both operands are `BitSerialMatrix` packings sharing the depth
 * dimension (weights [K, C], activations [N, C]); the product is computed
 * entirely in the bit domain: for every pair of bit planes (b, c),
 * AND+popcount over the 64-column words contributes
 * columnWeight(b) * columnWeight(c) * popcount to the accumulator
 * (gemmbitserial's algorithm). The kernel is cache-blocked over depth
 * words and register-tiled 2x1x2 — two activation rows x one depth word x
 * two weight rows share four plane loads per step — and parallelized over
 * activation-row tiles with parallelFor.
 *
 * `gemmReferenceBatch` is the naive per-element loop the test suite pins
 * the kernel against, exactly; `gemmReference` is the [C, N]-orientation
 * form the functional BitVert array simulation checks against (moved here
 * from accel/ so every GEMM reference lives beside the engine). The
 * references stay real functions on purpose: they are the oracles the
 * engine facade is pinned against, so they must not route through it.
 *
 * `gemmBitSerial` is a COMPATIBILITY WRAPPER now: the canonical route is
 * an engine::MatmulPlan (engine/engine.hpp) whose kind resolves to
 * TiledBitSerial, or the engine::matmulBitSerial convenience. The kernel
 * itself is detail::gemmBitSerialKernel.
 */
#ifndef BBS_GEMM_GEMM_HPP
#define BBS_GEMM_GEMM_HPP

#include "common/compat.hpp"
#include "engine/forwarding.hpp"
#include "engine/tuning.hpp"
#include "gemm/bit_serial_matrix.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/**
 * Maximum GEMM depth the INT32 output tensor supports without overflow:
 * the worst-case |dot| is depth * 128 * 128, so depth must stay below
 * 2^17 for the accumulator to fit (the engine kernels enforce this
 * rather than truncate silently — it also keeps the GEMM forward path
 * provably bit-identical to the int64 per-dot reference).
 */
inline constexpr std::int64_t kMaxGemmDepth = (1ll << 17) - 1;

/**
 * Naive integer GEMM reference: outputs [K, N] of
 * weights [K, C] x activations [C, N] (column-vector orientation used by
 * the functional accelerator simulations).
 */
Int32Tensor gemmReference(const Int8Tensor &weights,
                          const Int8Tensor &activations);

/**
 * Naive batched reference in the inference orientation: activations
 * [N, C] (one sample per row) x weights [K, C] -> outputs [N, K].
 */
Int32Tensor gemmReferenceBatch(const Int8Tensor &activations,
                               const Int8Tensor &weights);

namespace detail {

/**
 * Reshape @p out to [n, k] only when its shape differs — the
 * buffer-reuse contract every GEMM kernel and plan run shares (a
 * serving loop executing the same model batch after batch skips the
 * per-call allocate + zero-fill; every element is overwritten).
 */
inline void
ensureOutputShape(Int32Tensor &out, std::int64_t n, std::int64_t k)
{
    if (out.shape().rank() != 2 || out.shape().dim(0) != n ||
        out.shape().dim(1) != k)
        out.resizeTo(Shape{n, k}); // Shape enforces n, k >= 1; storage
                                   // is reused in place (grow-only)
}

/**
 * Bit-serial AND+popcount GEMM kernel: activations [N, C] x weights
 * [K, C], both packed, -> @p out [N, K] (reshaped only when its shape
 * differs, so repeated runs reuse the buffer). Exactly equals
 * gemmReferenceBatch on the unpacked operands for EVERY @p tuning
 * (blocking and tile shape change traversal order, never arithmetic).
 * The engine's TiledBitSerial plan kind executes here; the default
 * tuning derives the depth block from the detected cache topology and
 * runs the 2x1x2 SIMD register tile.
 *
 * @p weightRowLimit bounds the computation to the first that many weight
 * rows (out becomes [N, limit]); -1 = all rows. This is the growing-N
 * attention contract: a KV cache packs tokens into a fixed-capacity
 * plane store (viewExternal strides are capacity-derived, so the view
 * cannot shrink), and each decode step scores only the rows holding
 * tokens instead of the whole capacity.
 */
void gemmBitSerialKernel(const BitSerialMatrix &activations,
                         const BitSerialMatrix &weights, Int32Tensor &out,
                         const engine::TuningParams &tuning = {},
                         std::int64_t weightRowLimit = -1);

} // namespace detail

#if BBS_LEGACY_WRAPPERS

/** @deprecated Compatibility wrapper over engine::matmulBitSerial()
 *  (a default-Session plan forced to the TiledBitSerial kind). */
inline Int32Tensor
gemmBitSerial(const BitSerialMatrix &activations,
              const BitSerialMatrix &weights)
{
    return engine::matmulBitSerial(activations, weights);
}

#endif // BBS_LEGACY_WRAPPERS

} // namespace bbs

#endif // BBS_GEMM_GEMM_HPP
