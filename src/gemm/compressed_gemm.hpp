/**
 * @file
 * Compressed-domain GEMM: whole BBS-compressed weight rows executed
 * against a packed activation batch.
 *
 * `CompressedRowPlanes` prepares a matrix of BBS-compressed weight rows
 * once — every group's surviving bit columns as packed planes
 * (core/bitplane.hpp PackedGroup) stored row-contiguously together with
 * its pruned-column shift and BBS constant. `gemmCompressed` then computes
 * activations [N, C] x weights [K, C] -> [N, K] exactly as the BitVert PE
 * would, but batched:
 *
 *  - the activation batch is packed once (`BitSerialMatrix`), and each
 *    group's column window plus sum-of-activations is extracted once per
 *    (sample, group) and reused by every weight row;
 *  - surviving columns run bit-serially as AND+popcount products between
 *    weight planes and activation planes, shifted by the pruned-column
 *    count;
 *  - pruned columns contribute through the BBS-constant x
 *    sum-of-activations multiplier term (PE Fig 7 step 4) — an all-pruned
 *    group costs exactly one multiply per sample.
 *
 * The kernel parallelizes over weight-row tiles with parallelFor and
 * matches the compressed-domain dot kernel's value bit-for-bit; the test
 * suite pins it against the dense reference on the decompressed weights.
 *
 * `gemmCompressed` / `gemmCompressedInto` are COMPATIBILITY WRAPPERS now:
 * the canonical route is an engine::MatmulPlan (engine/engine.hpp) whose
 * kind resolves to CompressedBatched, or the engine::matmulCompressed*
 * conveniences. The kernel itself is detail::gemmCompressedKernel.
 */
#ifndef BBS_GEMM_COMPRESSED_GEMM_HPP
#define BBS_GEMM_COMPRESSED_GEMM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/compat.hpp"
#include "core/bitplane.hpp"
#include "core/compressed_tensor.hpp"
#include "engine/forwarding.hpp"
#include "engine/tuning.hpp"
#include "engine/scratch.hpp"
#include "gemm/bit_serial_matrix.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/**
 * BBS-compressed weight rows prepared once for the batched GEMM engine:
 * packed stored-column planes, shift and constant per group, groups laid
 * out row-major so row tiles stream cache-linearly.
 *
 * Every row covers the same column range with the same group structure:
 * ceil(cols / groupSize) groups, the last possibly short.
 */
class CompressedRowPlanes
{
  public:
    CompressedRowPlanes() = default;

    /**
     * Prepare from flat row-major groups with row offsets (the layout
     * Int8LinearLayer stores): row o's groups are
     * groups[rowOffsets[o] .. rowOffsets[o+1]). Each row's group sizes
     * must tile [0, cols) with @p groupSize (short tail allowed).
     */
    static CompressedRowPlanes
    prepare(std::span<const CompressedGroup> groups,
            std::span<const std::int64_t> rowOffsets, std::int64_t cols,
            std::int64_t groupSize);

    /**
     * Prepare from a whole-tensor compression (requires the channel size
     * to be a multiple of the group size, so no group spans two rows).
     */
    static CompressedRowPlanes prepare(const CompressedTensor &ct);

    /**
     * Non-owning view over externally held packed arrays in this class's
     * exact layout (the mmap model store: the container's Groups /
     * Shifts / Constants sections ARE these arrays, so "loading" is this
     * pointer fixup). All three arrays hold `rows * groupsPerRow`
     * entries indexed [row * groupsPerRow + g]; @p packed must be
     * 64-byte aligned (PackedGroup is one cache line) and all must
     * outlive the view. Every read path — the batched kernel, the
     * per-dot loop, decompress() — behaves bit-identically to an owned
     * prepare() of the same values.
     */
    static CompressedRowPlanes
    viewExternal(const PackedGroup *packed, const std::int8_t *shifts,
                 const std::int32_t *constants, std::int64_t rows,
                 std::int64_t cols, std::int64_t groupSize);

    /** True for viewExternal packings (storage owned elsewhere). */
    bool mappedView() const { return viewPacked_ != nullptr; }

    bool empty() const { return rows_ == 0; }
    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    std::int64_t groupSize() const { return groupSize_; }
    std::int64_t groupsPerRow() const { return groupsPerRow_; }

    /** Packed stored-column planes of row @p o, group @p g. */
    const PackedGroup &
    packedGroup(std::int64_t o, std::int64_t g) const
    {
        return packedBase()[static_cast<std::size_t>(
            o * groupsPerRow_ + g)];
    }

    /** Pruned-column shift of row @p o, group @p g. */
    int
    shift(std::int64_t o, std::int64_t g) const
    {
        return shiftBase()[static_cast<std::size_t>(
            o * groupsPerRow_ + g)];
    }

    /** BBS constant of row @p o, group @p g. */
    std::int32_t
    constant(std::int64_t o, std::int64_t g) const
    {
        return constantBase()[static_cast<std::size_t>(
            o * groupsPerRow_ + g)];
    }

    /** The three packed arrays, [row * groupsPerRow + g] (the store
     *  writer's payload source; for views, the external memory). */
    std::span<const PackedGroup>
    packedGroups() const
    {
        return {packedBase(),
                static_cast<std::size_t>(rows_ * groupsPerRow_)};
    }

    std::span<const std::int8_t>
    shifts() const
    {
        return {shiftBase(),
                static_cast<std::size_t>(rows_ * groupsPerRow_)};
    }

    std::span<const std::int32_t>
    constants() const
    {
        return {constantBase(),
                static_cast<std::size_t>(rows_ * groupsPerRow_)};
    }

    /** First column of group @p g (same for every row). */
    std::int64_t groupBegin(std::int64_t g) const { return g * groupSize_; }

    /** Member count of group @p g (short for the column tail). */
    int
    groupMembers(std::int64_t g) const
    {
        return static_cast<int>(
            std::min(groupSize_, cols_ - groupBegin(g)));
    }

    /**
     * Mean stored bit columns per weight across all groups (8.0 means
     * compression removed nothing anywhere). The sparsity signal
     * engine::MatmulPlan's kind selection reads.
     */
    double meanStoredBits() const;

    /**
     * Reconstruct the full INT8 weight matrix:
     * w = (stored << prunedColumns) + constant per group. Exact for
     * weights produced by the BBS compressor (the reconstruction is the
     * compressed form's defining identity). Used when a plan re-packs an
     * effectively-uncompressed operand for the dense tiled kernel, and by
     * PackedOperand::unpack().
     */
    Int8Tensor decompress() const;

  private:
    const PackedGroup *
    packedBase() const
    {
        return viewPacked_ != nullptr ? viewPacked_ : packed_.data();
    }

    const std::int8_t *
    shiftBase() const
    {
        return viewPacked_ != nullptr ? viewShifts_ : shifts_.data();
    }

    const std::int32_t *
    constantBase() const
    {
        return viewPacked_ != nullptr ? viewConstants_ : constants_.data();
    }

    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::int64_t groupSize_ = 0;
    std::int64_t groupsPerRow_ = 0;
    std::vector<PackedGroup> packed_;      ///< [row * groupsPerRow + g]
    std::vector<std::int8_t> shifts_;      ///< prunedColumns, same index
    std::vector<std::int32_t> constants_;  ///< BBS constants, same index
    /** Non-null = view mode: the three arrays live in external memory
     *  (an mmap'd container); same layout, storage owned by the view's
     *  creator. */
    const PackedGroup *viewPacked_ = nullptr;
    const std::int8_t *viewShifts_ = nullptr;
    const std::int32_t *viewConstants_ = nullptr;
};

namespace detail {

/**
 * Compressed-domain GEMM kernel: activations [N, C] (packed) x
 * compressed weight rows [K, C] -> @p out [N, K] (reshaped only when its
 * shape differs, so a serving loop reuses the buffer). Bit-exact against
 * the dense reference over the decompressed weights for EVERY @p tuning
 * (the stage-2 row-tile width changes traversal order, never
 * arithmetic). Stage-1 staging lives in @p scratch (grow-only); callers
 * normally pass engine::ScratchArena::forThisThread(). The engine's
 * CompressedBatched plan kind executes here.
 */
void gemmCompressedKernel(const CompressedRowPlanes &weights,
                          const BitSerialMatrix &activations,
                          Int32Tensor &out, engine::ScratchArena &scratch,
                          const engine::TuningParams &tuning = {});

} // namespace detail

#if BBS_LEGACY_WRAPPERS

/** @deprecated Compatibility wrapper over engine::matmulCompressed()
 *  (a default-Session plan forced to the CompressedBatched kind). */
inline Int32Tensor
gemmCompressed(const CompressedRowPlanes &weights,
               const BitSerialMatrix &activations)
{
    return engine::matmulCompressed(weights, activations);
}

/** @deprecated Compatibility wrapper over engine::matmulCompressedInto(). */
inline void
gemmCompressedInto(const CompressedRowPlanes &weights,
                   const BitSerialMatrix &activations, Int32Tensor &out)
{
    engine::matmulCompressedInto(weights, activations, out);
}

#endif // BBS_LEGACY_WRAPPERS

} // namespace bbs

#endif // BBS_GEMM_COMPRESSED_GEMM_HPP
