/**
 * @file
 * Compressed-domain GEMM: whole BBS-compressed weight rows executed
 * against a packed activation batch.
 *
 * `CompressedRowPlanes` prepares a matrix of BBS-compressed weight rows
 * once — every group's surviving bit columns as packed planes
 * (core/bitplane.hpp PackedGroup) stored row-contiguously together with
 * its pruned-column shift and BBS constant. `gemmCompressed` then computes
 * activations [N, C] x weights [K, C] -> [N, K] exactly as the BitVert PE
 * would, but batched:
 *
 *  - the activation batch is packed once (`BitSerialMatrix`), and each
 *    group's column window plus sum-of-activations is extracted once per
 *    (sample, group) and reused by every weight row;
 *  - surviving columns run bit-serially as AND+popcount products between
 *    weight planes and activation planes, shifted by the pruned-column
 *    count;
 *  - pruned columns contribute through the BBS-constant x
 *    sum-of-activations multiplier term (PE Fig 7 step 4) — an all-pruned
 *    group costs exactly one multiply per sample.
 *
 * The kernel parallelizes over weight-row tiles with parallelFor and
 * matches dotCompressed()'s value bit-for-bit; the test suite pins it
 * against dotReference on the decompressed weights.
 */
#ifndef BBS_GEMM_COMPRESSED_GEMM_HPP
#define BBS_GEMM_COMPRESSED_GEMM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/bitplane.hpp"
#include "core/compressed_tensor.hpp"
#include "gemm/bit_serial_matrix.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/**
 * BBS-compressed weight rows prepared once for the batched GEMM engine:
 * packed stored-column planes, shift and constant per group, groups laid
 * out row-major so row tiles stream cache-linearly.
 *
 * Every row covers the same column range with the same group structure:
 * ceil(cols / groupSize) groups, the last possibly short.
 */
class CompressedRowPlanes
{
  public:
    CompressedRowPlanes() = default;

    /**
     * Prepare from flat row-major groups with row offsets (the layout
     * Int8LinearLayer stores): row o's groups are
     * groups[rowOffsets[o] .. rowOffsets[o+1]). Each row's group sizes
     * must tile [0, cols) with @p groupSize (short tail allowed).
     */
    static CompressedRowPlanes
    prepare(std::span<const CompressedGroup> groups,
            std::span<const std::int64_t> rowOffsets, std::int64_t cols,
            std::int64_t groupSize);

    /**
     * Prepare from a whole-tensor compression (requires the channel size
     * to be a multiple of the group size, so no group spans two rows).
     */
    static CompressedRowPlanes prepare(const CompressedTensor &ct);

    bool empty() const { return rows_ == 0; }
    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    std::int64_t groupSize() const { return groupSize_; }
    std::int64_t groupsPerRow() const { return groupsPerRow_; }

    /** Packed stored-column planes of row @p o, group @p g. */
    const PackedGroup &
    packedGroup(std::int64_t o, std::int64_t g) const
    {
        return packed_[static_cast<std::size_t>(o * groupsPerRow_ + g)];
    }

    /** Pruned-column shift of row @p o, group @p g. */
    int
    shift(std::int64_t o, std::int64_t g) const
    {
        return shifts_[static_cast<std::size_t>(o * groupsPerRow_ + g)];
    }

    /** BBS constant of row @p o, group @p g. */
    std::int32_t
    constant(std::int64_t o, std::int64_t g) const
    {
        return constants_[static_cast<std::size_t>(o * groupsPerRow_ + g)];
    }

    /** First column of group @p g (same for every row). */
    std::int64_t groupBegin(std::int64_t g) const { return g * groupSize_; }

    /** Member count of group @p g (short for the column tail). */
    int
    groupMembers(std::int64_t g) const
    {
        return static_cast<int>(
            std::min(groupSize_, cols_ - groupBegin(g)));
    }

  private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::int64_t groupSize_ = 0;
    std::int64_t groupsPerRow_ = 0;
    std::vector<PackedGroup> packed_;      ///< [row * groupsPerRow + g]
    std::vector<std::int8_t> shifts_;      ///< prunedColumns, same index
    std::vector<std::int32_t> constants_;  ///< BBS constants, same index
};

/**
 * Compressed-domain GEMM: activations [N, C] (packed) x compressed weight
 * rows [K, C] -> outputs [N, K]. Bit-exact against dotReference over the
 * decompressed weights.
 */
Int32Tensor gemmCompressed(const CompressedRowPlanes &weights,
                           const BitSerialMatrix &activations);

/**
 * Same GEMM into a caller-owned output buffer: @p out is reshaped only
 * when its shape differs from [N, K], so a serving loop that executes the
 * same model batch after batch skips the per-call allocate + zero-fill
 * (every output element is overwritten unconditionally).
 */
void gemmCompressedInto(const CompressedRowPlanes &weights,
                        const BitSerialMatrix &activations,
                        Int32Tensor &out);

} // namespace bbs

#endif // BBS_GEMM_COMPRESSED_GEMM_HPP
