/**
 * @file
 * Bit-serial activation matrix: a whole INT8 matrix packed once into
 * `[bit][row][col-word]` uint64 planes (gemmbitserial-style layout).
 *
 * `BitPlaneTensor` (core/bitplane.hpp) packs *weights* group-wise for the
 * compressor and the accelerator models; `BitSerialMatrix` is its
 * activation-side counterpart for the GEMM engine: rows are matrix rows
 * (batch samples), columns are the shared GEMM depth, and each bit plane
 * of a row is a contiguous run of 64-column words. Packing happens once
 * per batch, after which every AND+popcount kernel — the dense 2x1x2 tile
 * and the compressed-domain GEMM — streams the planes cache-linearly.
 *
 * Columns are padded up to a multiple of 64 with zero bits; zero bits
 * contribute nothing to any popcount, so the padding never affects
 * results. Row planes are additionally padded to a whole number of cache
 * lines (colWords is a multiple of @ref kRowPlaneWordAlign) and the
 * backing store is 64-byte aligned, so every rowPlane() pointer is
 * 64-byte aligned and the SIMD kernels' vector loads never straddle a
 * cache line.
 */
#ifndef BBS_GEMM_BIT_SERIAL_MATRIX_HPP
#define BBS_GEMM_BIT_SERIAL_MATRIX_HPP

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/bit_utils.hpp"
#include "simd/simd.hpp"
#include "tensor/tensor.hpp"

namespace bbs {

/** Words per row plane are padded to this multiple (64 B = one cache
 *  line), so row-plane starts stay 64-byte aligned. */
inline constexpr std::int64_t kRowPlaneWordAlign =
    static_cast<std::int64_t>(kCacheLineBytes / sizeof(std::uint64_t));

/**
 * Value sum encoded by eight aligned window planes (plane c's popcount
 * weighs columnWeight(c)). The one expression both rangeSum and the
 * compressed GEMM's sum-of-activations stage compute, kept shared so the
 * sign-plane handling cannot drift between them. Dispatches to the SIMD
 * kernel layer (exact at every level).
 */
inline std::int64_t
planeWindowSum(const std::uint64_t *planes)
{
    return simdKernels().weightedPlaneSum(planes);
}

/**
 * An INT8 matrix packed into two's-complement bit planes, one uint64 word
 * per 64 columns, layout `[bit][row][col-word]` with 64-column alignment.
 */
class BitSerialMatrix
{
  public:
    BitSerialMatrix() = default;

    /** Pack a rank-2 tensor [rows, cols]. */
    static BitSerialMatrix pack(const Int8Tensor &m);

    /** Pack a flat row-major value sequence of @p rows x @p cols. */
    static BitSerialMatrix pack(std::span<const std::int8_t> values,
                                std::int64_t rows, std::int64_t cols);

    /**
     * Pack into an existing matrix, reusing its plane storage when the
     * capacity suffices (the hot-path form: a serving worker repacking
     * each batch's activations into its scratch arena allocates only
     * until the largest batch has been seen).
     */
    static void packInto(const Int8Tensor &m, BitSerialMatrix &into);
    static void packInto(std::span<const std::int8_t> values,
                         std::int64_t rows, std::int64_t cols,
                         BitSerialMatrix &into);

    /** Grow plane-storage capacity for a future packInto of
     *  @p rows x @p cols (plan-creation pre-sizing). */
    void reserve(std::int64_t rows, std::int64_t cols);

    /**
     * Non-owning view over externally held plane words in this class's
     * exact layout (the mmap model store: the container payload IS the
     * packed layout, so "loading" is this pointer fixup). @p words must
     * stay valid for the matrix's lifetime, hold
     * `kWeightBits * rows * colWords` words with @p colWords ==
     * paddedColWords(cols), and be 64-byte aligned (the kernels' vector
     * loads assume it). Every read path — kernels, window(), unpack() —
     * behaves bit-identically to an owned packing of the same values.
     */
    static BitSerialMatrix viewExternal(const std::uint64_t *words,
                                        std::int64_t rows,
                                        std::int64_t cols);

    /** True for viewExternal matrices (storage owned elsewhere). */
    bool mappedView() const { return view_ != nullptr; }

    /** Padded words per row plane for @p cols columns: cols rounded up
     *  to 64, then to whole cache lines (kRowPlaneWordAlign). */
    static std::int64_t
    paddedColWords(std::int64_t cols)
    {
        std::int64_t usedWords = (cols + 63) / 64;
        return (usedWords + kRowPlaneWordAlign - 1) / kRowPlaneWordAlign *
               kRowPlaneWordAlign;
    }

    /** All plane words, layout [bit][row][col-word] (the store writer's
     *  payload source; for views, the external memory). */
    std::span<const std::uint64_t>
    planeWords() const
    {
        return {view_ != nullptr ? view_ : words_.data(),
                static_cast<std::size_t>(kWeightBits * rows_ * colWords_)};
    }

    bool empty() const { return rows_ == 0 || cols_ == 0; }
    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    /**
     * Words per row plane: cols rounded up to a multiple of 64, then up
     * to a multiple of kRowPlaneWordAlign (the extra words hold zero
     * bits, which no popcount can observe). Being a cache-line multiple
     * over a 64-byte-aligned base keeps every rowPlane() aligned.
     */
    std::int64_t colWords() const { return colWords_; }
    /**
     * Words actually holding columns (cols rounded up to a multiple of
     * 64, without the cache-line padding). Compute loops bound by this;
     * the padded tail words are zero and would only add wasted
     * AND+popcount work.
     */
    std::int64_t usedColWords() const { return (cols_ + 63) / 64; }
    int bits() const { return kWeightBits; }

    /**
     * Plane @p b of row @p r: @ref colWords words, column c at word c/64,
     * bit c%64. Contiguous and 64-byte aligned — the GEMM kernels walk it
     * with a raw pointer.
     */
    const std::uint64_t *
    rowPlane(int b, std::int64_t r) const
    {
        return (view_ != nullptr ? view_ : words_.data()) +
               static_cast<std::size_t>(
                   (static_cast<std::int64_t>(b) * rows_ + r) * colWords_);
    }

    /**
     * 64-bit window of plane @p b, row @p r, columns [begin, begin+len):
     * column begin+i at bit i, bits at and above @p len zero. Handles
     * windows that straddle a word boundary; @p len must be 1..64 and the
     * window must lie inside the padded column range.
     */
    std::uint64_t
    window(int b, std::int64_t r, std::int64_t begin, int len) const
    {
        const std::uint64_t *plane = rowPlane(b, r);
        std::int64_t word = begin >> 6;
        int off = static_cast<int>(begin & 63);
        std::uint64_t w = plane[word] >> off;
        if (off + len > 64)
            w |= plane[word + 1] << (64 - off);
        if (len < 64)
            w &= (1ull << len) - 1ull;
        return w;
    }

    /**
     * Sum of row @p r's values over columns [begin, begin+len), computed
     * from the planes (8 popcounts). This is the sum-of-activations term
     * the compressed-domain GEMM feeds the BBS-constant multiplier.
     */
    std::int64_t
    rangeSum(std::int64_t r, std::int64_t begin, int len) const
    {
        std::uint64_t planes[kWeightBits];
        for (int b = 0; b < kWeightBits; ++b)
            planes[b] = window(b, r, begin, len);
        return planeWindowSum(planes);
    }

    /** Reconstruct the INT8 matrix (exact inverse of pack). */
    Int8Tensor unpack() const;

  private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::int64_t colWords_ = 0;
    /** Plane-major storage: word [(b * rows + r) * colWords + w];
     *  64-byte-aligned base. Unused (empty) in view mode. */
    AlignedVector<std::uint64_t> words_;
    /** Non-null = view mode: plane words live in external memory (an
     *  mmap'd container); same layout, storage owned by the view's
     *  creator. Cleared by packInto (packing re-owns storage). */
    const std::uint64_t *view_ = nullptr;
};

} // namespace bbs

#endif // BBS_GEMM_BIT_SERIAL_MATRIX_HPP
