#include "gemm/bit_serial_matrix.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "core/bitplane.hpp"

namespace bbs {

BitSerialMatrix
BitSerialMatrix::pack(const Int8Tensor &m)
{
    BBS_REQUIRE(m.shape().rank() == 2,
                "BitSerialMatrix packs rank-2 matrices, got rank ",
                m.shape().rank());
    return pack(m.data(), m.shape().dim(0), m.shape().dim(1));
}

BitSerialMatrix
BitSerialMatrix::pack(std::span<const std::int8_t> values, std::int64_t rows,
                      std::int64_t cols)
{
    BitSerialMatrix bsm;
    packInto(values, rows, cols, bsm);
    return bsm;
}

void
BitSerialMatrix::packInto(const Int8Tensor &m, BitSerialMatrix &into)
{
    BBS_REQUIRE(m.shape().rank() == 2,
                "BitSerialMatrix packs rank-2 matrices, got rank ",
                m.shape().rank());
    packInto(m.data(), m.shape().dim(0), m.shape().dim(1), into);
}

BitSerialMatrix
BitSerialMatrix::viewExternal(const std::uint64_t *words, std::int64_t rows,
                              std::int64_t cols)
{
    BBS_REQUIRE(words != nullptr && rows > 0 && cols > 0,
                "viewExternal needs a non-null base and a positive shape");
    BBS_REQUIRE(reinterpret_cast<std::uintptr_t>(words) %
                        kCacheLineBytes ==
                    0,
                "viewExternal base must be 64-byte aligned");
    BitSerialMatrix bsm;
    bsm.rows_ = rows;
    bsm.cols_ = cols;
    bsm.colWords_ = paddedColWords(cols);
    bsm.view_ = words;
    return bsm;
}

void
BitSerialMatrix::reserve(std::int64_t rows, std::int64_t cols)
{
    if (rows <= 0 || cols <= 0)
        return;
    words_.reserve(static_cast<std::size_t>(kWeightBits * rows *
                                            paddedColWords(cols)));
}

void
BitSerialMatrix::packInto(std::span<const std::int8_t> values,
                          std::int64_t rows, std::int64_t cols,
                          BitSerialMatrix &into)
{
    BBS_REQUIRE(rows >= 0 && cols >= 0 &&
                    static_cast<std::int64_t>(values.size()) == rows * cols,
                "value count ", values.size(), " != ", rows, " x ", cols);
    BitSerialMatrix &bsm = into;
    bsm.view_ = nullptr; // packing (re)owns storage
    bsm.rows_ = rows;
    bsm.cols_ = cols;
    // Pad row planes to whole cache lines: the tail words stay zero, so
    // every kernel result is unchanged while vector loads stay aligned.
    std::int64_t usedWords = bsm.usedColWords();
    bsm.colWords_ = paddedColWords(cols);
    // assign() reuses existing capacity: repacking into a warm matrix
    // (the serving hot path) performs no allocation.
    bsm.words_.assign(static_cast<std::size_t>(kWeightBits * rows *
                                               bsm.colWords_),
                      0);
    // Each 64-column chunk of a row packs through the same flip-diagonal
    // transpose the weight-side packGroup uses; rows are independent, so
    // a large batch packs in parallel.
    std::int64_t colWords = bsm.colWords_;
    std::uint64_t *words = bsm.words_.data();
    parallelFor(rows, [&](std::int64_t r) {
        const std::int8_t *row = values.data() + r * cols;
        for (std::int64_t w = 0; w < usedWords; ++w) {
            std::int64_t begin = w * 64;
            std::size_t len = static_cast<std::size_t>(
                std::min<std::int64_t>(64, cols - begin));
            PackedGroup pg = packGroup(
                std::span<const std::int8_t>(row + begin, len));
            for (int b = 0; b < kWeightBits; ++b)
                words[(static_cast<std::int64_t>(b) * rows + r) * colWords +
                      w] = pg.planes[static_cast<std::size_t>(b)];
        }
    }, 8);
}

Int8Tensor
BitSerialMatrix::unpack() const
{
    Int8Tensor out(Shape{rows_, cols_});
    std::int64_t usedWords = usedColWords();
    for (std::int64_t r = 0; r < rows_; ++r) {
        for (std::int64_t w = 0; w < usedWords; ++w) {
            std::int64_t begin = w * 64;
            int len = static_cast<int>(
                std::min<std::int64_t>(64, cols_ - begin));
            PackedGroup pg;
            pg.size = len;
            pg.bits = kWeightBits;
            for (int b = 0; b < kWeightBits; ++b)
                pg.planes[static_cast<std::size_t>(b)] =
                    window(b, r, begin, len);
            unpackGroup(pg, std::span<std::int8_t>(
                                &out.at(r, begin),
                                static_cast<std::size_t>(len)));
        }
    }
    return out;
}

} // namespace bbs
