#include "gemm/gemm.hpp"

#include <bit>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "simd/simd.hpp"

namespace bbs {

namespace {

/**
 * The generic (non-2x2) register tile: one activation row x one weight
 * row per step through the plain AND+popcount stream. Kept as the
 * autotuner's alternative tile shape — it loads each plane pair twice as
 * often as the 2x1x2 micro-kernel but has no degenerate-edge handling,
 * which can win on very small row counts.
 */
void
gemmBitSerial1x1(const BitSerialMatrix &activations,
                 const BitSerialMatrix &weights, Int32Tensor &out,
                 std::int64_t depthBlockWords, std::int64_t k)
{
    std::int64_t n = activations.rows();
    std::int64_t depthWords = activations.usedColWords();
    const SimdKernels &simd = simdKernels();
    parallelFor(n, [&](std::int64_t r) {
        for (std::int64_t o = 0; o < k; ++o) {
            std::int64_t acc = 0;
            for (std::int64_t d0 = 0; d0 < depthWords;
                 d0 += depthBlockWords) {
                std::int64_t len =
                    std::min(depthBlockWords, depthWords - d0);
                for (int ba = 0; ba < kWeightBits; ++ba) {
                    const std::uint64_t *a =
                        activations.rowPlane(ba, r) + d0;
                    std::int64_t sa = columnWeight(ba, kWeightBits);
                    for (int bw = 0; bw < kWeightBits; ++bw) {
                        const std::uint64_t *w =
                            weights.rowPlane(bw, o) + d0;
                        acc += sa * columnWeight(bw, kWeightBits) *
                               simd.andPopcountAccumulate(a, w, len);
                    }
                }
            }
            out.at(r, o) = static_cast<std::int32_t>(acc);
        }
    }, 1);
}

} // namespace

Int32Tensor
gemmReference(const Int8Tensor &weights, const Int8Tensor &activations)
{
    std::int64_t k = weights.shape().dim(0);
    std::int64_t c = weights.shape().dim(1);
    BBS_REQUIRE(activations.shape().dim(0) == c,
                "activation rows must equal weight columns");
    std::int64_t n = activations.shape().dim(1);
    Int32Tensor out(Shape{k, n});
    parallelFor(k, [&](std::int64_t row) {
        for (std::int64_t col = 0; col < n; ++col) {
            std::int64_t acc = 0;
            for (std::int64_t i = 0; i < c; ++i)
                acc += static_cast<std::int64_t>(weights.at(row, i)) *
                       static_cast<std::int64_t>(activations.at(i, col));
            out.at(row, col) = static_cast<std::int32_t>(acc);
        }
    }, 1);
    return out;
}

Int32Tensor
gemmReferenceBatch(const Int8Tensor &activations, const Int8Tensor &weights)
{
    std::int64_t n = activations.shape().dim(0);
    std::int64_t c = activations.shape().dim(1);
    BBS_REQUIRE(weights.shape().dim(1) == c,
                "weight depth must equal activation depth");
    std::int64_t k = weights.shape().dim(0);
    Int32Tensor out(Shape{n, k});
    parallelFor(n, [&](std::int64_t row) {
        for (std::int64_t o = 0; o < k; ++o) {
            std::int64_t acc = 0;
            for (std::int64_t i = 0; i < c; ++i)
                acc += static_cast<std::int64_t>(activations.at(row, i)) *
                       static_cast<std::int64_t>(weights.at(o, i));
            out.at(row, o) = static_cast<std::int32_t>(acc);
        }
    }, 1);
    return out;
}

void
detail::gemmBitSerialKernel(const BitSerialMatrix &activations,
                            const BitSerialMatrix &weights,
                            Int32Tensor &out,
                            const engine::TuningParams &tuning,
                            std::int64_t weightRowLimit)
{
    BBS_REQUIRE(activations.cols() == weights.cols(),
                "GEMM depth mismatch: ", activations.cols(), " vs ",
                weights.cols());
    BBS_REQUIRE(activations.cols() <= kMaxGemmDepth,
                "GEMM depth ", activations.cols(),
                " can overflow the INT32 outputs (max ", kMaxGemmDepth,
                ")");
    std::int64_t n = activations.rows();
    std::int64_t k = weights.rows();
    if (weightRowLimit >= 0) {
        BBS_REQUIRE(weightRowLimit >= 1 && weightRowLimit <= k,
                    "weight-row limit ", weightRowLimit,
                    " outside 1..", k);
        k = weightRowLimit;
    }
    // Bound compute by the words that hold columns: the cache-line
    // padding beyond them is all zero bits (up to 7 wasted words per
    // row plane for narrow matrices).
    std::int64_t depthWords = activations.usedColWords();
    ensureOutputShape(out, n, k);

    // Depth words per cache block: the four resident plane rows
    // (2 activation + 2 weight) are re-streamed 64 times (8x8 bit-plane
    // pairs) per block, so the block keeps them inside L1. The default
    // (depthBlockWords = 0) derives from the detected cache topology —
    // 512 words (16 KiB resident) on a 32 KiB L1d.
    std::int64_t depthBlock = tuning.resolvedDepthBlockWords();

    if (tuning.tileRows < 2 || tuning.tileCols < 2) {
        gemmBitSerial1x1(activations, weights, out, depthBlock, k);
        return;
    }

    // Row tiles of two samples; each tile walks every weight-row pair so
    // output rows are written by exactly one task. The kernel table is
    // resolved once out here, not per tile.
    const SimdKernels &simd = simdKernels();
    std::int64_t rowTiles = (n + 1) / 2;
    parallelFor(rowTiles, [&](std::int64_t t) {
        std::int64_t r0 = 2 * t;
        std::int64_t r1 = std::min(r0 + 1, n - 1); // degenerate last tile
        for (std::int64_t o0 = 0; o0 < k; o0 += 2) {
            std::int64_t o1 = std::min(o0 + 1, k - 1);
            std::int64_t acc00 = 0, acc01 = 0, acc10 = 0, acc11 = 0;
            for (std::int64_t d0 = 0; d0 < depthWords;
                 d0 += depthBlock) {
                std::int64_t len = std::min(depthBlock,
                                            depthWords - d0);
                for (int ba = 0; ba < kWeightBits; ++ba) {
                    const std::uint64_t *a0 =
                        activations.rowPlane(ba, r0) + d0;
                    const std::uint64_t *a1 =
                        activations.rowPlane(ba, r1) + d0;
                    std::int64_t sa = columnWeight(ba, kWeightBits);
                    for (int bw = 0; bw < kWeightBits; ++bw) {
                        const std::uint64_t *w0 =
                            weights.rowPlane(bw, o0) + d0;
                        const std::uint64_t *w1 =
                            weights.rowPlane(bw, o1) + d0;
                        // 2x1x2 micro-kernel: four AND+popcount streams
                        // sharing the four plane loads, dispatched to
                        // the active SIMD level.
                        std::int64_t p[4];
                        simd.andPopcountTile(a0, a1, w0, w1, len, p);
                        std::int64_t sig =
                            sa * columnWeight(bw, kWeightBits);
                        acc00 += sig * p[0];
                        acc01 += sig * p[1];
                        acc10 += sig * p[2];
                        acc11 += sig * p[3];
                    }
                }
            }
            out.at(r0, o0) = static_cast<std::int32_t>(acc00);
            if (o1 != o0)
                out.at(r0, o1) = static_cast<std::int32_t>(acc01);
            if (r1 != r0) {
                out.at(r1, o0) = static_cast<std::int32_t>(acc10);
                if (o1 != o0)
                    out.at(r1, o1) = static_cast<std::int32_t>(acc11);
            }
        }
    }, 1);
}

} // namespace bbs
