/**
 * @file
 * Figure 15: breakdown of lane-cycles into useful work, intra-PE stall and
 * inter-PE stall as PE columns scale, for the four bit-sparse accelerators
 * on ResNet-50. BitVert shows minimal inter-PE stall (structured BBS).
 */
#include <iostream>

#include "bench_common.hpp"
#include "accel/bitlet.hpp"
#include "accel/bitvert.hpp"
#include "accel/bitwave.hpp"
#include "accel/pragmatic.hpp"

using namespace bbs;
using namespace bbs::bench;

namespace {

void
addRows(Table &t, const std::string &accName, Accelerator &acc,
        const PreparedModel &pm, int cols)
{
    SimConfig cfg;
    // Equal multiplier budget across designs (see fig14).
    cfg.peColumnsOverride = cols * 16 / acc.lanesPerPe();
    ModelSim ms = acc.simulateModel(pm, cfg);
    double useful = ms.usefulLaneCycles();
    double intra = ms.intraPeStallLaneCycles();
    double inter = ms.interPeStallLaneCycles();
    double total = useful + intra + inter;
    t.addRow({accName, std::to_string(cols),
              formatDouble(100.0 * useful / total, 1),
              formatDouble(100.0 * intra / total, 1),
              formatDouble(100.0 * inter / total, 1)});
}

} // namespace

int
main()
{
    printHeader(
        "Figure 15 — execution lane-cycle breakdown vs PE columns "
        "(ResNet-50)",
        "Pragmatic/Bitlet accumulate inter-PE stalls as columns grow; "
        "BitVert's deterministic group latency keeps inter-PE stall "
        "near zero.");

    const MaterializedModel &mm = cachedModel("ResNet-50");
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel plain = prepareModel(mm);
    PreparedModel withMod = prepareModel(mm, &mod);

    PragmaticAccelerator pragmatic;
    BitletAccelerator bitlet;
    BitwaveAccelerator bitwave;
    BitVertAccelerator bitvert(mod, "BitVert (mod)");

    Table t({"Accelerator", "PE cols", "Useful %", "Intra-PE stall %",
             "Inter-PE stall %"});
    for (int cols : {2, 8, 32}) {
        addRows(t, "Pragmatic", pragmatic, plain, cols);
        addRows(t, "Bitlet", bitlet, plain, cols);
        addRows(t, "BitWave", bitwave, plain, cols);
        addRows(t, "BitVert (mod)", bitvert, withMod, cols);
    }
    t.print(std::cout);

    std::cout << "\nPaper reference shape: inter-PE stall grows with "
                 "columns for Pragmatic/Bitlet; BitVert has the highest "
                 "useful fraction and minimal inter-PE stall at 32 "
                 "columns.\n";
    return 0;
}
