/**
 * @file
 * Ablation: sensitive-channel fraction beta (Algorithm 2). The paper uses
 * beta = 10% (conservative) and 20% (moderate); this sweep shows the
 * compression-vs-distortion frontier the choice navigates, plus the
 * BitVert speedup at each point.
 */
#include <iostream>

#include "bench_common.hpp"
#include "accel/bitvert.hpp"
#include "accel/stripes.hpp"
#include "metrics/kl_divergence.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Ablation — sensitive-channel fraction beta (ResNet-50, "
                "4 columns, zero-point shifting)",
                "More sensitive channels mean less compression and less "
                "distortion; beta 0.1-0.2 is the paper's operating band.");

    const MaterializedModel &mm = cachedModel("ResNet-50");
    SimConfig simCfg;
    StripesAccelerator stripes;
    PreparedModel plain = prepareModel(mm);
    double base = stripes.simulateModel(plain, simCfg).totalCycles();

    Table t({"beta", "Eff. bits", "Compression", "Mean layer KL",
             "BitVert speedup"});
    for (double beta : {0.0, 0.05, 0.1, 0.2, 0.4}) {
        GlobalPruneConfig cfg = moderateConfig();
        cfg.beta = beta;

        PrunedModel pruned =
            globalBinaryPrune(mm.toPrunableLayers(), cfg);
        double klSum = 0.0;
        for (std::size_t i = 0; i < mm.layers.size(); ++i)
            klSum += klDivergence(mm.layers[i].weights.values,
                                  pruned.layers[i].codes);
        double meanKl = klSum / static_cast<double>(mm.layers.size());

        PreparedModel pm = prepareModel(mm, &cfg);
        BitVertAccelerator bv(cfg, "BitVert");
        double speedup =
            base / bv.simulateModel(pm, simCfg).totalCycles();

        t.addRow({formatDouble(beta, 2),
                  formatDouble(pruned.effectiveBits(), 2),
                  times(pruned.compressionRatio()),
                  format("%.2e", meanKl), times(speedup)});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: KL falls and compression/speedup "
                 "shrink monotonically as beta grows.\n";
    return 0;
}
