/**
 * @file
 * Table VI: OliVe PE vs BitVert PE — area, power, normalized performance
 * and performance per area. BitVert computes 16 multiplications in 4
 * cycles under moderate pruning (4 MACs/cycle) vs OliVe's 1 MAC/cycle.
 */
#include <iostream>

#include "bench_common.hpp"
#include "hw/pe_model.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Table VI — OliVe vs BitVert PE efficiency",
                "BitVert's BBS skipping yields higher performance per "
                "area than OliVe's outlier-victim PE (paper: 1.58x).");

    PeCost olive = olivePe();
    PeCost bv = bitvertPe();

    // Throughput: OliVe computes 1 MAC/cycle; BitVert computes 16 MACs in
    // 4 cycles with moderate pruning (8 - 4 stored columns).
    double olivePerf = 1.0;
    double bvPerf = 16.0 / 4.0;
    double olivePpa = olivePerf / olive.totalArea();
    double bvPpa = bvPerf / bv.totalArea();

    Table t({"Accelerator", "Area (um^2)", "Power (mW)", "Norm. Perf",
             "Norm. Perf/Area"});
    t.addRow({"Olive", formatDouble(olive.totalArea(), 1),
              formatDouble(olive.powerMw, 2), times(1.0),
              times(1.0)});
    t.addRow({"BitVert (mod)", formatDouble(bv.totalArea(), 1),
              formatDouble(bv.powerMw, 2), times(bvPerf / olivePerf),
              times(bvPpa / olivePpa)});
    t.print(std::cout);

    std::cout << "\nPaper reference: Olive 291.6 um^2 / 0.18 mW / 1x; "
                 "BitVert 739.6 um^2 / 0.45 mW / 4x perf / 1.58x "
                 "perf-per-area.\n";
    return 0;
}
