#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "simd/simd.hpp"

namespace bbs::bench {

namespace {

/** --json state; plain statics — benches are single-main binaries.
 *  Records are pre-rendered JSON objects (via JsonWriter) spliced into
 *  the document at flush time with JsonWriter::raw(). */
struct JsonState
{
    std::string bench;
    std::string path; ///< empty = reporting disabled
    std::vector<std::string> records;
};

JsonState &
jsonState()
{
    static JsonState s;
    return s;
}

} // namespace

void
jsonInit(const std::string &bench, int argc, char **argv)
{
    JsonState &s = jsonState();
    s.bench = bench;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            s.path = argv[i + 1];
            return;
        }
    }
}

void
jsonAdd(const std::string &kernel, const std::string &config,
        std::initializer_list<std::pair<const char *, double>> metrics)
{
    JsonState &s = jsonState();
    if (s.path.empty())
        return;
    std::ostringstream rec;
    JsonWriter w(rec);
    w.beginObject();
    w.member("kernel", kernel);
    w.member("config", config);
    for (const auto &[name, value] : metrics)
        w.member(name, value);
    w.endObject();
    s.records.push_back(rec.str());
}

void
jsonFlush()
{
    JsonState &s = jsonState();
    if (s.path.empty())
        return;
    std::ofstream out(s.path);
    BBS_REQUIRE(out.good(), "cannot open --json path ", s.path);
    JsonWriter w(out);
    w.beginObject();
    w.member("bench", s.bench);
    w.member("simd", simdLevelName(activeSimdLevel()));
    w.key("records");
    w.beginArray();
    for (const std::string &rec : s.records)
        w.raw(rec);
    w.endArray();
    w.endObject();
    out << "\n";
    BBS_REQUIRE(w.complete() && out.good(), "failed writing --json path ",
                s.path);
}

void
printHeader(const std::string &experiment, const std::string &claim)
{
    std::cout << "==========================================================="
                 "=====================\n"
              << experiment << "\n"
              << claim << "\n"
              << "==========================================================="
                 "=====================\n";
}

const MaterializedModel &
cachedModel(const std::string &name, std::int64_t cap)
{
    static std::map<std::string, MaterializedModel> cache;
    std::string key = name + "/" + std::to_string(cap);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = cap;
    auto [pos, inserted] =
        cache.emplace(key, materializeModel(modelByName(name), opts));
    return pos->second;
}

std::map<std::string, ModelSim>
simulateLineup(const std::string &modelName, const SimConfig &cfg)
{
    const MaterializedModel &mm = cachedModel(modelName);
    GlobalPruneConfig cons = conservativeConfig();
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel plain = prepareModel(mm);
    PreparedModel withCons = prepareModel(mm, &cons);
    PreparedModel withMod = prepareModel(mm, &mod);

    std::map<std::string, ModelSim> out;
    for (auto &acc : evaluationLineup()) {
        const PreparedModel *pm = &plain;
        if (acc->name() == "BitVert (cons)")
            pm = &withCons;
        else if (acc->name() == "BitVert (mod)")
            pm = &withMod;
        out.emplace(acc->name(), acc->simulateModel(*pm, cfg));
    }
    return out;
}

namespace {

/** Architecture + dataset family of a stand-in. */
enum class Family
{
    Cnn,
    Transformer,
};

Family
familyOf(const std::string &modelName)
{
    if (modelName.rfind("VGG", 0) == 0 || modelName.rfind("Res", 0) == 0)
        return Family::Cnn;
    return Family::Transformer;
}

std::uint64_t
seedOf(const std::string &modelName)
{
    std::uint64_t h = 1469598103934665603ull;
    for (char c : modelName) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

Network
buildArch(Family family, const Dataset &ds, std::uint64_t seed)
{
    Rng rng(seed);
    Network net;
    if (family == Family::Cnn) {
        // 12x12 single-channel images.
        net.add(std::make_unique<Conv2d>(1, 8, 3, 12, 1, rng));
        net.add(std::make_unique<ReluLayer>());
        net.add(std::make_unique<Dense>(8 * 12 * 12, 48, rng));
        net.add(std::make_unique<ReluLayer>());
        net.add(std::make_unique<Dense>(48, ds.numClasses, rng));
    } else {
        net.add(std::make_unique<Dense>(ds.features, 96, rng));
        net.add(std::make_unique<GeluLayer>());
        net.add(std::make_unique<Dense>(96, 48, rng));
        net.add(std::make_unique<GeluLayer>());
        net.add(std::make_unique<Dense>(48, ds.numClasses, rng));
    }
    return net;
}

Dataset
buildData(Family family, std::uint64_t seed)
{
    if (family == Family::Cnn)
        return makeShapeDataset(220, 12, seed);
    return makeClusterDataset(180, 6, 24, seed);
}

} // namespace

StandIn &
standInFor(const std::string &modelName)
{
    static std::map<std::string, StandIn> cache;
    auto it = cache.find(modelName);
    if (it != cache.end())
        return it->second;

    Family family = familyOf(modelName);
    std::uint64_t seed = seedOf(modelName);
    StandIn si;
    si.data = buildData(family, seed);
    si.net = buildArch(family, si.data, seed);

    TrainOptions opts;
    opts.epochs = family == Family::Cnn ? 10 : 18;
    opts.seed = seed ^ 0xabcdef;
    trainNetwork(si.net, si.data.trainX, si.data.trainY, opts);
    si.baselineAccuracy =
        accuracyPercent(si.net, si.data.testX, si.data.testY);

    // INT8 baseline accuracy (the paper's Table I INT8 column).
    Network clone = buildArch(family, si.data, seed);
    {
        auto src = si.net.weightTensors();
        auto dst = clone.weightTensors();
        for (std::size_t i = 0; i < src.size(); ++i)
            *dst[i] = *src[i];
        auto srcB = si.net.biasTensors();
        auto dstB = clone.biasTensors();
        for (std::size_t i = 0; i < srcB.size(); ++i)
            *dstB[i] = *srcB[i];
    }
    CompressionSpec int8spec;
    int8spec.method = CompressionMethod::None;
    compressNetwork(clone, int8spec);
    si.int8Accuracy =
        accuracyPercent(clone, si.data.testX, si.data.testY);

    auto [pos, inserted] = cache.emplace(modelName, std::move(si));
    return pos->second;
}

Network
cloneNetwork(const std::string &modelName)
{
    StandIn &si = standInFor(modelName);
    Network clone = buildArch(familyOf(modelName), si.data,
                              seedOf(modelName));
    auto src = si.net.weightTensors();
    auto dst = clone.weightTensors();
    BBS_ASSERT(src.size() == dst.size());
    for (std::size_t i = 0; i < src.size(); ++i)
        *dst[i] = *src[i];
    auto srcB = si.net.biasTensors();
    auto dstB = clone.biasTensors();
    for (std::size_t i = 0; i < srcB.size(); ++i)
        *dstB[i] = *srcB[i];
    return clone;
}

double
accuracyAfter(const std::string &modelName, const CompressionSpec &spec,
              CompressionReport *report)
{
    StandIn &si = standInFor(modelName);
    Network clone = cloneNetwork(modelName);
    CompressionReport rep = compressNetwork(clone, spec);
    if (report)
        *report = rep;
    return accuracyPercent(clone, si.data.testX, si.data.testY);
}

std::string
times(double v, int digits)
{
    return format("%.*fx", digits, v);
}

std::string
deltaPct(double v, int digits)
{
    return format("%+.*f", digits, v);
}

double
simdGateTarget()
{
    switch (activeSimdLevel()) {
    case SimdLevel::Scalar: return 0.0;
    case SimdLevel::Avx2: return 1.5;
    case SimdLevel::Avx512: return 3.0;
    }
    return 0.0;
}

namespace {

/** One warm-up, then the best of @p reps (least-noise estimator). */
double
bestSeconds(const std::function<void()> &fn, int reps)
{
    fn();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/** Ungated rows must never dispatch a real pessimization; the slack
 *  below 1.0 absorbs shared-runner timing noise. */
constexpr double kSimdFloor = 0.75;

} // namespace

void
SimdDispatchBench::row(const std::string &name, bool gated,
                       const std::function<std::int64_t()> &scalarFn,
                       const std::function<std::int64_t()> &activeFn,
                       double wordsPerCall)
{
    std::int64_t ref = scalarFn();
    std::int64_t got = activeFn();
    if (ref != got)
        BBS_PANIC("SIMD kernel ", name, " deviates from scalar: ", got,
                  " vs ", ref);
    volatile std::int64_t sink = 0;
    double scalarS = bestSeconds(
        [&] {
            std::int64_t s = 0;
            for (int r = 0; r < reps_; ++r)
                s += scalarFn();
            sink = s;
        },
        5);
    double activeS = bestSeconds(
        [&] {
            std::int64_t s = 0;
            for (int r = 0; r < reps_; ++r)
                s += activeFn();
            sink = s;
        },
        5);
    (void)sink;
    double perCall = wordsPerCall * reps_;
    Row r;
    r.name = name;
    r.gated = gated;
    r.scalarMws = perCall / scalarS / 1e6;
    r.dispatchedMws = perCall / activeS / 1e6;
    r.speedup = scalarS / activeS;
    rows_.push_back(r);
    jsonAdd(name, "dispatch-vs-scalar",
            {{"scalar_mws", r.scalarMws},
             {"dispatched_mws", r.dispatchedMws},
             {"speedup", r.speedup},
             {"gated", gated ? 1.0 : 0.0}});
}

bool
SimdDispatchBench::finish(std::ostream &os, const std::string &caption)
{
    double target = simdGateTarget();
    if (rows_.empty() || target == 0.0) {
        os << "\n" << caption
           << ":\nscalar dispatch active - nothing to gate\n";
        return true;
    }
    os << "\n" << caption << ":\n";
    Table table({"kernel", "scalar", "dispatched", "speedup"});
    double logSum = 0.0;
    int gatedCount = 0;
    bool floorOk = true;
    bool anyUngated = false;
    for (const Row &r : rows_) {
        if (r.gated) {
            logSum += std::log(r.speedup);
            ++gatedCount;
        } else {
            anyUngated = true;
            if (r.speedup < kSimdFloor)
                floorOk = false;
        }
        table.addRow({r.gated ? r.name : (r.name + " *"),
                      format("%.1f Mw/s", r.scalarMws),
                      format("%.1f Mw/s", r.dispatchedMws),
                      times(r.speedup)});
    }
    table.print(os);
    if (anyUngated)
        os << "(* window/group kernels: reported and checked, floor "
           << format("%.2f", kSimdFloor)
           << "x, outside the stream-kernel gate)\n";
    double geomean =
        gatedCount > 0 ? std::exp(logSum / gatedCount) : 1.0;
    bool ok = (gatedCount == 0 || geomean >= target) && floorOk;
    os << "\ngeomean dispatched stream-kernel speedup: " << times(geomean)
       << "  (target >= " << times(target, 1) << " for "
       << simdLevelName(activeSimdLevel()) << ": "
       << (ok ? "met" : "MISSED") << ")\n";
    jsonAdd("simd_geomean", "dispatch-vs-scalar",
            {{"speedup", geomean}, {"target", target}});
    return ok;
}

} // namespace bbs::bench
