#include "bench_common.hpp"

#include <iostream>
#include <memory>

#include "common/logging.hpp"

namespace bbs::bench {

void
printHeader(const std::string &experiment, const std::string &claim)
{
    std::cout << "==========================================================="
                 "=====================\n"
              << experiment << "\n"
              << claim << "\n"
              << "==========================================================="
                 "=====================\n";
}

const MaterializedModel &
cachedModel(const std::string &name, std::int64_t cap)
{
    static std::map<std::string, MaterializedModel> cache;
    std::string key = name + "/" + std::to_string(cap);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    MaterializeOptions opts;
    opts.maxWeightsPerLayer = cap;
    auto [pos, inserted] =
        cache.emplace(key, materializeModel(modelByName(name), opts));
    return pos->second;
}

std::map<std::string, ModelSim>
simulateLineup(const std::string &modelName, const SimConfig &cfg)
{
    const MaterializedModel &mm = cachedModel(modelName);
    GlobalPruneConfig cons = conservativeConfig();
    GlobalPruneConfig mod = moderateConfig();
    PreparedModel plain = prepareModel(mm);
    PreparedModel withCons = prepareModel(mm, &cons);
    PreparedModel withMod = prepareModel(mm, &mod);

    std::map<std::string, ModelSim> out;
    for (auto &acc : evaluationLineup()) {
        const PreparedModel *pm = &plain;
        if (acc->name() == "BitVert (cons)")
            pm = &withCons;
        else if (acc->name() == "BitVert (mod)")
            pm = &withMod;
        out.emplace(acc->name(), acc->simulateModel(*pm, cfg));
    }
    return out;
}

namespace {

/** Architecture + dataset family of a stand-in. */
enum class Family
{
    Cnn,
    Transformer,
};

Family
familyOf(const std::string &modelName)
{
    if (modelName.rfind("VGG", 0) == 0 || modelName.rfind("Res", 0) == 0)
        return Family::Cnn;
    return Family::Transformer;
}

std::uint64_t
seedOf(const std::string &modelName)
{
    std::uint64_t h = 1469598103934665603ull;
    for (char c : modelName) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

Network
buildArch(Family family, const Dataset &ds, std::uint64_t seed)
{
    Rng rng(seed);
    Network net;
    if (family == Family::Cnn) {
        // 12x12 single-channel images.
        net.add(std::make_unique<Conv2d>(1, 8, 3, 12, 1, rng));
        net.add(std::make_unique<ReluLayer>());
        net.add(std::make_unique<Dense>(8 * 12 * 12, 48, rng));
        net.add(std::make_unique<ReluLayer>());
        net.add(std::make_unique<Dense>(48, ds.numClasses, rng));
    } else {
        net.add(std::make_unique<Dense>(ds.features, 96, rng));
        net.add(std::make_unique<GeluLayer>());
        net.add(std::make_unique<Dense>(96, 48, rng));
        net.add(std::make_unique<GeluLayer>());
        net.add(std::make_unique<Dense>(48, ds.numClasses, rng));
    }
    return net;
}

Dataset
buildData(Family family, std::uint64_t seed)
{
    if (family == Family::Cnn)
        return makeShapeDataset(220, 12, seed);
    return makeClusterDataset(180, 6, 24, seed);
}

} // namespace

StandIn &
standInFor(const std::string &modelName)
{
    static std::map<std::string, StandIn> cache;
    auto it = cache.find(modelName);
    if (it != cache.end())
        return it->second;

    Family family = familyOf(modelName);
    std::uint64_t seed = seedOf(modelName);
    StandIn si;
    si.data = buildData(family, seed);
    si.net = buildArch(family, si.data, seed);

    TrainOptions opts;
    opts.epochs = family == Family::Cnn ? 10 : 18;
    opts.seed = seed ^ 0xabcdef;
    trainNetwork(si.net, si.data.trainX, si.data.trainY, opts);
    si.baselineAccuracy =
        accuracyPercent(si.net, si.data.testX, si.data.testY);

    // INT8 baseline accuracy (the paper's Table I INT8 column).
    Network clone = buildArch(family, si.data, seed);
    {
        auto src = si.net.weightTensors();
        auto dst = clone.weightTensors();
        for (std::size_t i = 0; i < src.size(); ++i)
            *dst[i] = *src[i];
        auto srcB = si.net.biasTensors();
        auto dstB = clone.biasTensors();
        for (std::size_t i = 0; i < srcB.size(); ++i)
            *dstB[i] = *srcB[i];
    }
    CompressionSpec int8spec;
    int8spec.method = CompressionMethod::None;
    compressNetwork(clone, int8spec);
    si.int8Accuracy =
        accuracyPercent(clone, si.data.testX, si.data.testY);

    auto [pos, inserted] = cache.emplace(modelName, std::move(si));
    return pos->second;
}

Network
cloneNetwork(const std::string &modelName)
{
    StandIn &si = standInFor(modelName);
    Network clone = buildArch(familyOf(modelName), si.data,
                              seedOf(modelName));
    auto src = si.net.weightTensors();
    auto dst = clone.weightTensors();
    BBS_ASSERT(src.size() == dst.size());
    for (std::size_t i = 0; i < src.size(); ++i)
        *dst[i] = *src[i];
    auto srcB = si.net.biasTensors();
    auto dstB = clone.biasTensors();
    for (std::size_t i = 0; i < srcB.size(); ++i)
        *dstB[i] = *srcB[i];
    return clone;
}

double
accuracyAfter(const std::string &modelName, const CompressionSpec &spec,
              CompressionReport *report)
{
    StandIn &si = standInFor(modelName);
    Network clone = cloneNetwork(modelName);
    CompressionReport rep = compressNetwork(clone, spec);
    if (report)
        *report = rep;
    return accuracyPercent(clone, si.data.testX, si.data.testY);
}

std::string
times(double v, int digits)
{
    return format("%.*fx", digits, v);
}

std::string
deltaPct(double v, int digits)
{
    return format("%+.*f", digits, v);
}

} // namespace bbs::bench
