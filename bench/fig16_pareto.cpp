/**
 * @file
 * Figure 16: EDP vs accuracy-loss Pareto frontier on ResNet-50. BitVert
 * operating points (pruning ratios) are swept and compared against
 * Bitlet, BitWave, ANT and conventional PTQ; BitVert sits on the
 * frontier.
 */
#include <iostream>

#include "bench_common.hpp"
#include "accel/ant_accel.hpp"
#include "accel/bitlet.hpp"
#include "accel/bitvert.hpp"
#include "accel/bitwave.hpp"
#include "accel/stripes.hpp"

using namespace bbs;
using namespace bbs::bench;

namespace {

struct Point
{
    std::string label;
    double edp;
    double accLoss;
};

} // namespace

int
main()
{
    printHeader("Figure 16 — EDP vs accuracy-loss Pareto (ResNet-50)",
                "BitVert operating points dominate Bitlet/BitWave/ANT/PTQ "
                "(paper: BitVert always on the Pareto frontier).");

    const std::string model = "ResNet-50";
    const MaterializedModel &mm = cachedModel(model);
    StandIn &si = standInFor(model);
    double baseAcc = si.int8Accuracy;
    SimConfig cfg;

    std::vector<Point> points;

    // BitVert sweep: conservative/moderate plus heavier pruning.
    struct BvCfg
    {
        const char *label;
        GlobalPruneConfig cfg;
    };
    std::vector<BvCfg> sweeps;
    sweeps.push_back({"BitVert t=2", conservativeConfig()});
    sweeps.push_back({"BitVert t=4", moderateConfig()});
    GlobalPruneConfig eager = moderateConfig();
    eager.targetColumns = 5;
    sweeps.push_back({"BitVert t=5", eager});

    for (const auto &s : sweeps) {
        PreparedModel pm = prepareModel(mm, &s.cfg);
        BitVertAccelerator bv(s.cfg, s.label);
        ModelSim ms = bv.simulateModel(pm, cfg);
        CompressionSpec spec;
        spec.method = CompressionMethod::BbsPrune;
        spec.bbs = s.cfg;
        double acc = accuracyAfter(model, spec);
        points.push_back({s.label, ms.edp(), baseAcc - acc});
    }

    // Baselines.
    PreparedModel plain = prepareModel(mm);
    {
        BitletAccelerator bitlet;
        ModelSim ms = bitlet.simulateModel(plain, cfg);
        points.push_back({"Bitlet", ms.edp(), 0.0}); // lossless
    }
    {
        BitwaveAccelerator bitwave;
        ModelSim ms = bitwave.simulateModel(plain, cfg);
        CompressionSpec spec;
        spec.method = CompressionMethod::BitwaveFlip;
        spec.bbs = conservativeConfig();
        double acc = accuracyAfter(model, spec);
        points.push_back({"BitWave", ms.edp(), baseAcc - acc});
    }
    {
        AntAccelerator ant;
        ModelSim ms = ant.simulateModel(plain, cfg);
        CompressionSpec spec;
        spec.method = CompressionMethod::AntAdaptive;
        spec.bits = 6;
        double acc = accuracyAfter(model, spec);
        points.push_back({"ANT 6b", ms.edp(), baseAcc - acc});
    }
    {
        // Conventional PTQ running on the dense bit-serial baseline with
        // proportionally reduced precision/memory (4-bit).
        StripesAccelerator stripes;
        ModelSim ms = stripes.simulateModel(plain, cfg);
        CompressionSpec spec;
        spec.method = CompressionMethod::PtqClip;
        spec.bits = 4;
        spec.bbs = moderateConfig();
        double acc = accuracyAfter(model, spec);
        points.push_back({"PTQ 4b", ms.edp() * 0.5, baseAcc - acc});
    }

    // Normalize EDP to the worst point.
    double maxEdp = 0.0;
    for (const auto &p : points)
        maxEdp = std::max(maxEdp, p.edp);

    Table t({"Design point", "Norm. EDP", "Accuracy loss (%)"});
    for (const auto &p : points)
        t.addRow({p.label, formatDouble(p.edp / maxEdp, 3),
                  formatDouble(p.accLoss, 2)});
    t.print(std::cout);

    // Pareto check: is any BitVert point dominated?
    bool dominated = false;
    for (const auto &p : points) {
        if (p.label.rfind("BitVert", 0) != 0)
            continue;
        for (const auto &q : points) {
            if (q.label.rfind("BitVert", 0) == 0)
                continue;
            if (q.edp <= p.edp && q.accLoss <= p.accLoss)
                dominated = true;
        }
    }
    std::cout << "\nBitVert points dominated by a baseline: "
              << (dominated ? "YES (deviation!)" : "no — on the Pareto "
                                                   "frontier, as in the "
                                                   "paper")
              << "\n";
    return 0;
}
