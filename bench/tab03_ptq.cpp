/**
 * @file
 * Table III: BBS vs Microscaling vs NoisyQuant on vision transformers at
 * ~6-bit weights (8-bit activations) — accuracy loss and bit width.
 */
#include <iostream>

#include "bench_common.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader(
        "Table III — BBS vs Microscaling vs NoisyQuant on ViTs",
        "BBS (cons) beats Microscaling at similar bits; BBS (mod) beats "
        "NoisyQuant with lower memory footprint.");

    Table t({"Model", "Method", "dAcc (%)", "Bits", "Weight KL"});
    for (const char *name : {"ViT-Small", "ViT-Base"}) {
        StandIn &si = standInFor(name);
        double base = si.int8Accuracy;

        CompressionSpec mx;
        mx.method = CompressionMethod::Microscaling;
        mx.bits = 6;
        CompressionReport mxRep;
        double mxAcc = accuracyAfter(name, mx, &mxRep);

        CompressionSpec noisy;
        noisy.method = CompressionMethod::NoisyPtq;
        noisy.bits = 6;
        CompressionReport noisyRep;
        double noisyAcc = accuracyAfter(name, noisy, &noisyRep);

        CompressionSpec cons;
        cons.method = CompressionMethod::BbsPrune;
        cons.bbs = conservativeConfig();
        CompressionReport consRep;
        double consAcc = accuracyAfter(name, cons, &consRep);

        CompressionSpec mod;
        mod.method = CompressionMethod::BbsPrune;
        mod.bbs = moderateConfig();
        CompressionReport modRep;
        double modAcc = accuracyAfter(name, mod, &modRep);

        t.addRow({name, "Microscaling", deltaPct(mxAcc - base),
                  formatDouble(mxRep.effectiveBits, 2),
                  format("%.2e", mxRep.weightKl)});
        t.addRow({name, "NoisyQuant", deltaPct(noisyAcc - base),
                  formatDouble(noisyRep.effectiveBits, 2),
                  format("%.2e", noisyRep.weightKl)});
        t.addRow({name, "BBS (cons)", deltaPct(consAcc - base),
                  formatDouble(consRep.effectiveBits, 2),
                  format("%.2e", consRep.weightKl)});
        t.addRow({name, "BBS (mod)", deltaPct(modAcc - base),
                  formatDouble(modRep.effectiveBits, 2),
                  format("%.2e", modRep.weightKl)});
    }
    t.print(std::cout);
    std::cout << "\nPaper reference (ViT-Small): Microscaling 2.49%/6.25b, "
                 "NoisyQuant 2.08%/6b, BBS 0.75%/6.33b (cons), "
                 "0.96%/5.19b (mod).\n";
    return 0;
}
