/**
 * @file
 * Table IV: BitVert PE design-space exploration — sub-group sizes
 * {16, 8, 4} with and without the circuit optimizations (compact muxes and
 * time-multiplexed BBS multiplier). Sub-group 8 with optimization is the
 * shipped configuration.
 */
#include <iostream>

#include "bench_common.hpp"
#include "hw/pe_model.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Table IV — BitVert PE design space (area um^2 / power mW)",
                "Sub-group 8 with the circuit optimizations offers the "
                "best area-power trade-off (paper: 739.6 um^2 / 0.45 mW).");

    Table t({"Sub-group", "Area (no opt)", "Power (no opt)",
             "Area (opt)", "Power (opt)"});
    for (int sg : {16, 8, 4}) {
        PeCost base = bitvertPe(sg, false);
        PeCost opt = bitvertPe(sg, true);
        t.addRow({std::to_string(sg), formatDouble(base.totalArea(), 1),
                  formatDouble(base.powerMw, 2),
                  formatDouble(opt.totalArea(), 1),
                  formatDouble(opt.powerMw, 2)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: sg16 1342.3/0.61 -> 971.5/0.53; "
                 "sg8 896.6/0.49 -> 739.6/0.45; sg4 878.7/0.51 -> "
                 "786.5/0.47.\n";
    return 0;
}
