/**
 * @file
 * Figure 17 + §V-H: LLM weight compression — BBS (cons/mod, group 32, all
 * channels) vs OliVe 4-bit on Llama-3-8B.
 *
 * Two measurements substitute the paper's WikiText/C4 perplexity runs
 * (DESIGN.md §1):
 *  (1) real perplexity of a trained character-LM stand-in compressed
 *      through the identical code paths, on two synthetic corpora;
 *  (2) weight-level MSE/KL on full-shape synthetic Llama-3-8B tensors
 *      (one decoder block, extrapolated x32).
 */
#include <iostream>

#include "bench_common.hpp"
#include "metrics/error.hpp"
#include "metrics/kl_divergence.hpp"
#include "nn/dataset.hpp"
#include "quant/olive.hpp"
#include "quant/quantizer.hpp"

using namespace bbs;
using namespace bbs::bench;

namespace {

/** Build the char-LM architecture (fixed seed for cloning). */
Network
buildLm(const TextDataset &ds)
{
    Rng rng(97);
    Network lm;
    lm.add(std::make_unique<Dense>(
        static_cast<std::int64_t>(ds.context) * ds.alphabet, 96, rng));
    lm.add(std::make_unique<GeluLayer>());
    lm.add(std::make_unique<Dense>(96, 64, rng));
    lm.add(std::make_unique<GeluLayer>());
    lm.add(std::make_unique<Dense>(64, ds.alphabet, rng));
    return lm;
}

/** Clone trained weights, compress with one scheme, return perplexity. */
double
compressedPerplexity(Network &trained, const TextDataset &ds,
                     const CompressionSpec &spec,
                     double *effBits = nullptr)
{
    Network lm = buildLm(ds);
    auto src = trained.weightTensors();
    auto dst = lm.weightTensors();
    for (std::size_t i = 0; i < src.size(); ++i)
        *dst[i] = *src[i];
    auto srcB = trained.biasTensors();
    auto dstB = lm.biasTensors();
    for (std::size_t i = 0; i < srcB.size(); ++i)
        *dstB[i] = *srcB[i];

    CompressionReport rep = compressNetwork(lm, spec);
    if (effBits)
        *effBits = rep.effectiveBits;
    return perplexity(lm, ds.testX, ds.testY);
}

} // namespace

int
main()
{
    printHeader(
        "Figure 17 — Llama-3-8B weight compression: BBS vs OliVe",
        "Moderate BBS (4.25 bits) beats OliVe 4-bit on perplexity; "
        "conservative BBS (6.25 bits) is near-lossless vs FP32.");

    // (1) Real perplexity on the char-LM stand-in; two corpora stand in
    // for WikiText and C4.
    struct Corpus
    {
        const char *name;
        std::uint64_t seed;
    };
    for (Corpus corpus : {Corpus{"WikiText (synthetic)", 1001},
                          Corpus{"C4 (synthetic)", 2002}}) {
        TextDataset ds =
            makeMarkovTextDataset(24000, 6000, 16, 4, corpus.seed);

        Network fp32 = buildLm(ds);
        TrainOptions opts;
        opts.epochs = 10;
        trainNetwork(fp32, ds.trainX, ds.trainY, opts);
        double fp32Ppl = perplexity(fp32, ds.testX, ds.testY);

        CompressionSpec cons;
        cons.method = CompressionMethod::BbsPrune;
        cons.bbs = conservativeConfig();
        cons.bbs.beta = 0.0; // §V-H: all channels pruned
        CompressionSpec mod = cons;
        mod.bbs = moderateConfig();
        mod.bbs.beta = 0.0;
        CompressionSpec olive;
        olive.method = CompressionMethod::OlivePairs;
        olive.bits = 4;

        double bitsCons = 0, bitsMod = 0, bitsOlive = 0;
        double pplCons = compressedPerplexity(fp32, ds, cons, &bitsCons);
        double pplMod = compressedPerplexity(fp32, ds, mod, &bitsMod);
        double pplOlive =
            compressedPerplexity(fp32, ds, olive, &bitsOlive);

        Table t({"Corpus", "Method", "Bits", "Perplexity"});
        t.addRow({corpus.name, "FP32", "32", formatDouble(fp32Ppl, 3)});
        t.addRow({corpus.name, "BBS (cons)", formatDouble(bitsCons, 2),
                  formatDouble(pplCons, 3)});
        t.addRow({corpus.name, "BBS (mod)", formatDouble(bitsMod, 2),
                  formatDouble(pplMod, 3)});
        t.addRow({corpus.name, "OliVe 4-bit", formatDouble(bitsOlive, 2),
                  formatDouble(pplOlive, 3)});
        t.print(std::cout);
        std::cout << '\n';
    }

    // (2) Weight-level distortion on full-shape Llama tensors.
    std::cout << "Weight distortion on synthetic Llama-3-8B decoder-block "
                 "tensors (lower is better):\n";
    const MaterializedModel &llama = cachedModel("Llama-3-8B", 4'000'000);
    Table w({"Layer", "BBS cons KL", "BBS mod KL", "OliVe KL"});
    for (const auto &l : llama.layers) {
        const Int8Tensor &codes = l.weights.values;
        Int8Tensor cons = binaryPruneTensor(
            codes, 32, 2, PruneStrategy::RoundedAveraging);
        Int8Tensor mod = binaryPruneTensor(
            codes, 32, 4, PruneStrategy::ZeroPointShifting);

        // OliVe on the dequantized weights, re-expressed on the INT8 grid.
        QuantizedTensor qt;
        qt.values = codes;
        qt.scales = l.weights.scales;
        qt.bits = 8;
        OliveResult olive = oliveQuantize(qt.dequantize());
        QuantizedTensor oliveInt8 =
            quantizePerChannel(olive.dequantized, 8);

        w.addRow({l.desc.name,
                  format("%.2e", klDivergence(codes, cons)),
                  format("%.2e", klDivergence(codes, mod)),
                  format("%.2e", klDivergence(codes, oliveInt8.values))});
    }
    w.print(std::cout);

    std::cout << "\nPaper reference shape: BBS (mod, 4.25b) < OliVe (4b) "
                 "perplexity; BBS (cons, 6.25b) ~ FP32.\n";
    return 0;
}
