/**
 * @file
 * Ablation: BBS bit-vector size. BBS guarantees >= 50% sparsity for any
 * vector length, but *how much* above 50% depends on the length: short
 * vectors deviate further from the binomial mean (more skippable bits),
 * long vectors concentrate at exactly half. This is why the PE exploits
 * the bound at sub-group granularity (8) rather than across the array.
 */
#include <iostream>

#include "bench_common.hpp"
#include "core/bbs.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Ablation — BBS sparsity vs bit-vector size (ResNet-50)",
                "BBS sparsity decays toward the 50% bound as vectors "
                "grow; the guarantee itself never breaks.");

    const MaterializedModel &mm = cachedModel("ResNet-50", 500000);
    const Int8Tensor &codes = mm.layers[4].weights.values;

    Table t({"Vector size", "BBS sparsity", "Guaranteed minimum"});
    double prev = 1.0;
    for (std::int64_t vs : {2, 4, 8, 16, 32, 64}) {
        double s = bbsSparsity(codes, vs);
        t.addRow({std::to_string(vs), formatDouble(s, 4), "0.5000"});
        if (s < 0.5)
            std::cout << "WARNING: BBS bound violated!\n";
        if (s > prev + 1e-9)
            std::cout << "WARNING: sparsity not monotone in size!\n";
        prev = s;
    }
    t.print(std::cout);
    return 0;
}
