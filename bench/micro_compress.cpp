/**
 * @file
 * Microbenchmarks (google-benchmark) of the compression and bit-serial
 * kernels, backing the paper's §III-B claim that binary pruning is fast
 * (milliseconds-to-seconds per layer, ~15 s for all of ResNet-50).
 */
#include <benchmark/benchmark.h>

#include "core/bbs_dot.hpp"
#include "core/compressed_tensor.hpp"
#include "common/random.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"

namespace {

using namespace bbs;

Int8Tensor
codes(std::int64_t n, std::uint64_t seed = 1)
{
    Rng rng(seed);
    WeightDistribution dist;
    FloatTensor w = generateWeights(Shape{std::max<std::int64_t>(
                                              1, n / 256),
                                          256},
                                    dist, rng);
    return quantizePerChannel(w, 8).values;
}

void
BM_CompressRoundedAveraging(benchmark::State &state)
{
    Int8Tensor t = codes(state.range(0));
    for (auto _ : state) {
        CompressedTensor ct = CompressedTensor::compress(
            t, 32, 2, PruneStrategy::RoundedAveraging);
        benchmark::DoNotOptimize(ct);
    }
    state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_CompressRoundedAveraging)->Arg(1 << 14)->Arg(1 << 18);

void
BM_CompressZeroPointShifting(benchmark::State &state)
{
    Int8Tensor t = codes(state.range(0));
    for (auto _ : state) {
        CompressedTensor ct = CompressedTensor::compress(
            t, 32, 4, PruneStrategy::ZeroPointShifting);
        benchmark::DoNotOptimize(ct);
    }
    state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_CompressZeroPointShifting)->Arg(1 << 14)->Arg(1 << 18);

void
BM_DotReference(benchmark::State &state)
{
    Rng rng(3);
    std::vector<std::int8_t> w(32), a(32);
    for (auto &x : w)
        x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    for (auto &x : a)
        x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    for (auto _ : state)
        benchmark::DoNotOptimize(dotReference(w, a));
}
BENCHMARK(BM_DotReference);

void
BM_DotBitSerialBbs(benchmark::State &state)
{
    Rng rng(3);
    std::vector<std::int8_t> w(32), a(32);
    for (auto &x : w)
        x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    for (auto &x : a)
        x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    for (auto _ : state)
        benchmark::DoNotOptimize(dotBitSerialBbs(w, a));
}
BENCHMARK(BM_DotBitSerialBbs);

void
BM_DotCompressed(benchmark::State &state)
{
    Rng rng(3);
    std::vector<std::int8_t> w(32), a(32);
    for (auto &x : w)
        x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    for (auto &x : a)
        x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    CompressedGroup cg =
        compressGroup(w, 4, PruneStrategy::ZeroPointShifting);
    for (auto _ : state)
        benchmark::DoNotOptimize(dotCompressed(cg, a));
}
BENCHMARK(BM_DotCompressed);

} // namespace

BENCHMARK_MAIN();
