/**
 * @file
 * Transformer decode subsystem gates: the continuous-batching
 * GenerationScheduler against the naive unbatched reference.
 *
 * Three CI Release gates over one synthetic TransformerModel:
 *
 *  - BIT-IDENTITY: every token stream produced under continuous
 *    batching (16 concurrent requests with ragged prompt lengths and
 *    budgets, admitted in two waves so the step-batch composition
 *    churns) is byte-identical to TransformerModel::generateReference
 *    on the same prompt. This is the numerics contract — per-row float
 *    ops + exact integer matmuls — measured end to end.
 *
 *  - THROUGHPUT: generating the same token total through the scheduler
 *    at >= 8 concurrent streams reaches >= 3x the sequential
 *    one-sequence-at-a-time reference. The speedup is the point of the
 *    subsystem: a decode step over N sequences streams each layer's
 *    weight planes once for N rows instead of once per row.
 *
 *  - ZERO-ALLOC DECODE: after admission has sized every KV cache and a
 *    few steps have grown the workspace and step buffers to their
 *    high-water marks, pure decode steps perform exactly 0 heap
 *    allocations (counting operator new process-wide, same
 *    methodology as micro_serve's drain-path gate).
 */
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/alloc_count.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "llm/transformer.hpp"
#include "serve/generation.hpp"

namespace {

using namespace bbs;

llm::TransformerConfig
modelConfig()
{
    llm::TransformerConfig cfg;
    cfg.dModel = 256;
    cfg.nHeads = 4;
    cfg.dFf = 512;
    cfg.nLayers = 3;
    cfg.vocab = 512;
    cfg.maxSeq = 288;
    cfg.groupSize = 32;
    cfg.targetColumns = 3;
    cfg.expectedBatch = 16;
    cfg.seed = 0x11f0;
    return cfg;
}

/** Ragged prompts: lengths spread across the prefill-chunk boundary. */
std::vector<std::vector<std::int32_t>>
makePrompts(std::size_t count, std::int64_t vocab, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<std::int32_t>> prompts(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::int64_t len = 3 + rng.uniformInt(0, 37);
        prompts[i].resize(static_cast<std::size_t>(len));
        for (auto &t : prompts[i])
            t = static_cast<std::int32_t>(rng.uniformInt(0, vocab - 1));
    }
    return prompts;
}

double
wallSecondsOf(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Per-request collection sink with storage preallocated at submit. */
struct Collected
{
    std::vector<std::int32_t> tokens;
    bool last = false;
    ServeStatus status = ServeStatus::Ok;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::jsonInit("micro_llm", argc, argv);
    bench::printHeader(
        "micro_llm",
        "continuous-batching decode is bit-identical to the unbatched "
        "reference, >= 3x its throughput at >= 8 concurrent streams, "
        "and allocation-free at steady state");

    llm::TransformerModel model(modelConfig());
    const std::int64_t vocab = model.config().vocab;

    constexpr std::size_t kStreams = 16;
    constexpr std::int64_t kMaxNew = 48;
    auto prompts = makePrompts(kStreams, vocab, 0xcafe);

    // ---- Sequential reference: one sequence at a time, token-at-a-time
    //      prefill — the pre-subsystem deployment shape. Also the oracle
    //      for the bit-identity gate.
    std::vector<std::vector<std::int32_t>> oracle(kStreams);
    double baseS = wallSecondsOf([&] {
        for (std::size_t i = 0; i < kStreams; ++i)
            oracle[i] = model.generateReference(prompts[i], kMaxNew);
    });
    std::int64_t totalTokens =
        static_cast<std::int64_t>(kStreams) * kMaxNew;

    // ---- Continuous batching: all streams through one scheduler,
    //      admitted in two waves so batch composition changes mid-run.
    bool identical = true;
    auto runScheduler = [&](bool checkIdentity) -> double {
        serve::GenerationConfig gcfg;
        gcfg.maxStepRows = 16;
        gcfg.maxActiveSeqs = 16;
        gcfg.prefillChunk = 16;
        gcfg.workers = 0;
        obs::Registry metrics;
        serve::GenerationScheduler sched(model, gcfg, &metrics);

        std::vector<Collected> out(kStreams);
        for (auto &c : out)
            c.tokens.reserve(static_cast<std::size_t>(kMaxNew));
        auto submitOne = [&](std::size_t i) {
            Collected *sink = &out[i];
            sched.submit(prompts[i], kMaxNew,
                         [sink](const serve::StreamToken &t) {
                             sink->status = t.status;
                             if (t.status == ServeStatus::Ok)
                                 sink->tokens.push_back(t.token);
                             if (t.last)
                                 sink->last = true;
                         });
        };

        double elapsed = wallSecondsOf([&] {
            for (std::size_t i = 0; i < kStreams / 2; ++i)
                submitOne(i);
            // Second wave joins after the first is mid-flight.
            for (int s = 0; s < 4; ++s)
                sched.stepOnce();
            for (std::size_t i = kStreams / 2; i < kStreams; ++i)
                submitOne(i);
            while (sched.stepOnce()) {
            }
        });

        for (std::size_t i = 0; i < kStreams; ++i) {
            if (!out[i].last || out[i].status != ServeStatus::Ok)
                BBS_PANIC("stream ", i, " did not complete cleanly");
            if (checkIdentity && out[i].tokens != oracle[i])
                identical = false;
        }
        return elapsed;
    };

    double servedS = runScheduler(true);
    double baseTps = static_cast<double>(totalTokens) / baseS;
    double servedTps = static_cast<double>(totalTokens) / servedS;
    double speedup = servedTps / baseTps;
    // Timing ratio on a shared machine: retry a missed gate, keep the
    // best attempt (same policy as micro_serve).
    for (int attempt = 1; attempt < 3 && speedup < 3.0; ++attempt) {
        double again = runScheduler(false);
        if (again < servedS) {
            servedS = again;
            servedTps = static_cast<double>(totalTokens) / servedS;
            speedup = servedTps / baseTps;
        }
    }

    Table t({"streams", "sequential", "continuous batching", "speedup",
             "bit-identical"});
    t.addRow({format("%zu", kStreams), format("%.0f tok/s", baseTps),
              format("%.0f tok/s", servedTps), bench::times(speedup),
              identical ? "yes" : "NO"});
    t.print(std::cout);
    bench::jsonAdd("generate", format("streams=%zu", kStreams),
                   {{"sequential_tps", baseTps},
                    {"batched_tps", servedTps},
                    {"speedup", speedup},
                    {"bit_identical", identical ? 1.0 : 0.0}});

    bool gatePassed = true;
    if (!identical) {
        std::cout << "\ncontinuous-batching streams DEVIATED from the "
                     "unbatched reference!\n";
        gatePassed = false;
    } else {
        std::cout << "\nall " << kStreams
                  << " streams bit-identical to generateReference\n";
    }
    if (speedup < 3.0) {
        std::cout << "continuous-batching speedup " << bench::times(speedup)
                  << " BELOW the 3x gate at " << kStreams
                  << " concurrent streams!\n";
        gatePassed = false;
    } else {
        std::cout << "continuous-batching speedup target (>= 3x at >= 8 "
                     "streams) met\n";
    }

    // ---- Zero-allocation steady-state decode: admit 8 sequences, let
    //      prefill finish and the buffers reach high water, then demand
    //      0 heap allocations across pure decode steps.
    {
        serve::GenerationConfig gcfg;
        gcfg.maxStepRows = 16;
        gcfg.maxActiveSeqs = 8;
        gcfg.prefillChunk = 16;
        gcfg.workers = 0;
        obs::Registry metrics;
        serve::GenerationScheduler sched(model, gcfg, &metrics);

        constexpr std::size_t kDecodeStreams = 8;
        constexpr std::int64_t kDecodeNew = 200;
        std::vector<Collected> out(kDecodeStreams);
        for (std::size_t i = 0; i < kDecodeStreams; ++i) {
            out[i].tokens.reserve(static_cast<std::size_t>(kDecodeNew));
            Collected *sink = &out[i];
            sched.submit(prompts[i], kDecodeNew,
                         [sink](const serve::StreamToken &t) {
                             sink->status = t.status;
                             if (t.status == ServeStatus::Ok)
                                 sink->tokens.push_back(t.token);
                             if (t.last)
                                 sink->last = true;
                         });
        }
        // Warm-up: beyond every prompt's prefill (<= 40 tokens at 16 /
        // step / seq) plus a margin of decode steps.
        for (int s = 0; s < 40; ++s)
            sched.stepOnce();

        constexpr int kMeasuredSteps = 24;
        bool wasCounting = allocCountingEnabled();
        setAllocCounting(true);
        std::uint64_t p0 = processAllocCount();
        for (int s = 0; s < kMeasuredSteps; ++s)
            sched.stepOnce();
        std::uint64_t allocs = processAllocCount() - p0;
        setAllocCounting(wasCounting);
        while (sched.stepOnce()) {
        }

        double perStep = static_cast<double>(allocs) / kMeasuredSteps;
        std::cout << "\nsteady-state decode heap allocations: "
                  << allocs << " across " << kMeasuredSteps
                  << " steps (" << format("%.2f", perStep)
                  << " allocs/step, " << kDecodeStreams
                  << " decoding sequences)\n";
        bench::jsonAdd("decode-steady-state-allocs",
                       format("streams=%zu", kDecodeStreams),
                       {{"allocs_per_step", perStep}});
        if (allocs != 0) {
            std::cout << "steady-state decode ALLOCATED on the hot path "
                         "(expected 0 allocs/step)!\n";
            gatePassed = false;
        } else {
            std::cout << "steady-state decode is allocation-free\n";
        }
    }

    bench::jsonFlush();
    return gatePassed ? 0 : 1;
}
