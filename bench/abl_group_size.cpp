/**
 * @file
 * Ablation: BBS weight-group size. The paper fixes the group at 32 (§V-A);
 * this sweep shows the trade-off that choice sits on — smaller groups
 * carry more metadata overhead but adapt their constants locally (lower
 * MSE/KL); larger groups amortize metadata but average over more diverse
 * low bits.
 */
#include <iostream>

#include "bench_common.hpp"
#include "core/compressed_tensor.hpp"
#include "metrics/error.hpp"
#include "metrics/kl_divergence.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Ablation — BBS group size (ResNet-50, 4 columns, "
                "zero-point shifting)",
                "Group 32 balances metadata overhead against per-group "
                "adaptivity (the paper's chosen operating point).");

    const MaterializedModel &mm = cachedModel("ResNet-50", 500000);
    const Int8Tensor &codes = mm.layers[5].weights.values;

    Table t({"Group size", "Eff. bits/weight", "MSE", "KL"});
    for (std::int64_t gs : {8, 16, 32, 64}) {
        CompressedTensor ct = CompressedTensor::compress(
            codes, gs, 4, PruneStrategy::ZeroPointShifting);
        Int8Tensor rec = ct.decompress();
        t.addRow({std::to_string(gs),
                  formatDouble(ct.effectiveBitsPerWeight(), 3),
                  formatDouble(mse(codes, rec), 3),
                  format("%.2e", klDivergence(codes, rec))});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: effective bits fall toward 4.0 as the "
                 "group grows (metadata amortized: 4 + 8/G), while MSE/KL "
                 "rise slowly — group 32 (4.25 bits) is the knee.\n";
    return 0;
}
