/**
 * @file
 * Figure 14: speedup over Stripes on ResNet-50 and Bert-MRPC as the number
 * of lock-step PE columns grows from 2 to 32. Pragmatic/Bitlet degrade
 * (load imbalance across weight groups); BitWave and BitVert stay nearly
 * flat thanks to structured sparsity.
 */
#include <iostream>

#include "bench_common.hpp"
#include "accel/bitlet.hpp"
#include "accel/bitvert.hpp"
#include "accel/bitwave.hpp"
#include "accel/pragmatic.hpp"
#include "accel/stripes.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader(
        "Figure 14 — speedup over Stripes vs number of PE columns",
        "More lock-step columns worsen Pragmatic/Bitlet load imbalance; "
        "structured BBS keeps BitVert's speedup flat and highest.");

    GlobalPruneConfig mod = moderateConfig();
    StripesAccelerator stripes;
    PragmaticAccelerator pragmatic;
    BitletAccelerator bitlet;
    BitwaveAccelerator bitwave;
    BitVertAccelerator bitvert(mod, "BitVert (mod)");

    Table t({"Model", "PE cols", "Pragmatic", "Bitlet", "BitWave",
             "BitVert (mod)"});
    for (const char *name : {"ResNet-50", "Bert-MRPC"}) {
        const MaterializedModel &mm = cachedModel(name);
        PreparedModel plain = prepareModel(mm);
        PreparedModel withMod = prepareModel(mm, &mod);
        for (int cols : {2, 4, 8, 16, 32}) {
            // Equal multiplier budget at every point: accelerators with
            // 8-lane PEs (Bitlet, BitVert) run twice the lock-step
            // breadth of the 16-lane designs.
            auto cyclesOf = [&](Accelerator &a, const PreparedModel &pm) {
                SimConfig cfg;
                cfg.peColumnsOverride = cols * 16 / a.lanesPerPe();
                return a.simulateModel(pm, cfg).totalCycles();
            };
            double base = cyclesOf(stripes, plain);
            t.addRow({name, std::to_string(cols),
                      times(base / cyclesOf(pragmatic, plain)),
                      times(base / cyclesOf(bitlet, plain)),
                      times(base / cyclesOf(bitwave, plain)),
                      times(base / cyclesOf(bitvert, withMod))});
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper reference shape: Bitlet on Bert-MRPC drops from "
                 "~1.63x (2 cols) to ~1.35x (32 cols); BitWave/BitVert "
                 "nearly constant; BitVert always highest.\n";
    return 0;
}
