/**
 * @file
 * Figure 11: accuracy loss of PTQ vs BitWave vs BBS under conservative
 * (10% sensitive channels, 2 columns, rounded averaging) and moderate
 * (20%, 4 columns, zero-point shifting) compression, plus the model-size
 * reduction each achieves.
 *
 * Accuracies are measured on trained stand-in networks (DESIGN.md §1);
 * the reproducible claim is the *ordering*: BBS loses least, PTQ most.
 */
#include <iostream>

#include "bench_common.hpp"

using namespace bbs;
using namespace bbs::bench;

namespace {

CompressionSpec
specFor(CompressionMethod m, bool moderate)
{
    CompressionSpec spec;
    spec.method = m;
    spec.bbs = moderate ? moderateConfig() : conservativeConfig();
    // PTQ at the matching non-sensitive precision: 6-bit (cons), 4-bit
    // (mod).
    spec.bits = moderate ? 4 : 6;
    return spec;
}

} // namespace

int
main()
{
    printHeader(
        "Figure 11 — accuracy loss: PTQ vs BitWave vs BBS (cons / mod)",
        "BBS binary pruning loses the least accuracy at matched memory "
        "budget (paper: 0.25% cons / 0.45% mod average loss, 1.29x/1.66x "
        "compression).");

    Table t({"Model", "Cfg", "PTQ dAcc", "BitWave dAcc", "BBS dAcc",
             "BBS eff. bits", "BBS compression"});

    double sumConsLoss = 0.0, sumModLoss = 0.0;
    double sumConsComp = 0.0, sumModComp = 0.0;
    int n = 0;
    for (const auto &desc : benchmarkModels()) {
        StandIn &si = standInFor(desc.name);
        for (bool moderate : {false, true}) {
            double ptq = accuracyAfter(
                desc.name, specFor(CompressionMethod::PtqClip, moderate));
            double bw = accuracyAfter(
                desc.name,
                specFor(CompressionMethod::BitwaveFlip, moderate));
            CompressionReport rep;
            double bbsAcc = accuracyAfter(
                desc.name, specFor(CompressionMethod::BbsPrune, moderate),
                &rep);
            double base = si.int8Accuracy;
            t.addRow({desc.name, moderate ? "mod" : "cons",
                      deltaPct(ptq - base), deltaPct(bw - base),
                      deltaPct(bbsAcc - base),
                      formatDouble(rep.effectiveBits, 2),
                      times(8.0 / rep.effectiveBits)});
            if (moderate) {
                sumModLoss += base - bbsAcc;
                sumModComp += 8.0 / rep.effectiveBits;
            } else {
                sumConsLoss += base - bbsAcc;
                sumConsComp += 8.0 / rep.effectiveBits;
            }
        }
        ++n;
    }
    t.print(std::cout);

    std::cout << "\nBBS averages: cons loss "
              << formatDouble(sumConsLoss / n, 2) << "% at "
              << times(sumConsComp / n) << " compression; mod loss "
              << formatDouble(sumModLoss / n, 2) << "% at "
              << times(sumModComp / n)
              << " compression.\nPaper reference: 0.25% at 1.29x (cons); "
                 "0.45% at 1.66x (mod); BBS < BitWave < PTQ loss.\n";
    return 0;
}
