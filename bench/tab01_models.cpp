/**
 * @file
 * Table I: the evaluated models and datasets, with FP32 vs INT8 accuracy.
 * The paper's ImageNet/GLUE numbers are reported as reference; the
 * "stand-in" columns are the real accuracies of this repo's trained
 * substitute networks through the identical PTQ path (DESIGN.md §1).
 */
#include <iostream>

#include "bench_common.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Table I — evaluated models and INT8 baseline accuracy",
                "Per-channel INT8 PTQ is near-lossless on every benchmark.");

    Table t({"Model", "Dataset", "Weights (M)", "MACs (G)",
             "Paper FP32 %", "Paper INT8 %", "Stand-in FP32 %",
             "Stand-in INT8 %"});
    for (const auto &desc : benchmarkModels()) {
        StandIn &si = standInFor(desc.name);
        t.addRow({desc.name, desc.dataset,
                  formatDouble(desc.totalWeights() / 1e6, 1),
                  formatDouble(desc.totalMacs() / 1e9, 1),
                  formatDouble(desc.fp32Accuracy, 2),
                  formatDouble(desc.int8Accuracy, 2),
                  formatDouble(si.baselineAccuracy, 2),
                  formatDouble(si.int8Accuracy, 2)});
    }
    t.print(std::cout);
    std::cout << "\nClaim check: stand-in INT8 accuracy within ~1% of "
                 "stand-in FP32, matching the paper's negligible INT8 "
                 "loss.\n";
    return 0;
}
