/**
 * @file
 * Figure 6: normalized KL divergence of three bit-level pruning techniques
 * (sign-magnitude zero-column pruning, rounded averaging, zero-point
 * shifting) at 2 and 4 pruned columns, weight group 32, on ResNet-34 and
 * ViT-Base. Values are normalized to the zero-column-pruning result
 * (lower is better), matching the figure's presentation.
 */
#include <iostream>

#include "bench_common.hpp"
#include "core/compressed_tensor.hpp"
#include "metrics/kl_divergence.hpp"
#include "quant/bitwave.hpp"

using namespace bbs;
using namespace bbs::bench;

namespace {

struct KlRow
{
    double zeroCol = 0.0;
    double roundedAvg = 0.0;
    double zeroPoint = 0.0;
};

KlRow
measure(const MaterializedModel &mm, int columns)
{
    KlRow row;
    double n = 0.0;
    for (const auto &l : mm.layers) {
        const Int8Tensor &codes = l.weights.values;
        double w = static_cast<double>(codes.numel());
        row.zeroCol +=
            klDivergence(codes, bitwavePrune(codes, 32, columns)) * w;
        row.roundedAvg +=
            klDivergence(codes,
                         binaryPruneTensor(
                             codes, 32, columns,
                             PruneStrategy::RoundedAveraging)) *
            w;
        row.zeroPoint +=
            klDivergence(codes,
                         binaryPruneTensor(
                             codes, 32, columns,
                             PruneStrategy::ZeroPointShifting)) *
            w;
        n += w;
    }
    row.zeroCol /= n;
    row.roundedAvg /= n;
    row.zeroPoint /= n;
    return row;
}

} // namespace

int
main()
{
    printHeader(
        "Figure 6 — normalized KL divergence of bit-level pruning methods",
        "Binary pruning (both strategies) preserves the weight "
        "distribution far better than sign-magnitude zero-column pruning; "
        "zero-point shifting wins at eager (4-column) compression.");

    Table t({"Model", "Columns", "ZeroCol (sign-mag)", "Rounded Avg",
             "Zero-point Shift"});
    for (const char *name : {"ResNet-34", "ViT-Base"}) {
        const MaterializedModel &mm = cachedModel(name, 500000);
        for (int columns : {2, 4}) {
            KlRow row = measure(mm, columns);
            double base = row.zeroCol;
            t.addRow({name, std::to_string(columns), formatDouble(1.0, 3),
                      formatDouble(row.roundedAvg / base, 3),
                      formatDouble(row.zeroPoint / base, 3)});
        }
    }
    t.print(std::cout);

    std::cout
        << "\nPaper reference shape: both binary-pruning strategies well "
           "below 1.0;\nzero-point shifting lowest at 4 columns. (On "
           "i.i.d. synthetic weights zero-point\nshifting also wins at 2 "
           "columns — see EXPERIMENTS.md, Known deviations.)\n";
    return 0;
}
