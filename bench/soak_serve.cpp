/**
 * @file
 * Soak-and-chaos harness for the serving engine: does the runtime hold
 * its latency, memory and allocation invariants over MINUTES of open-loop
 * load with faults injected — not just over a benchmark's seconds?
 *
 * Load model. Three hosted models with heavy-tailed input sizes and
 * Zipf-like popularity (a small model takes most traffic, a rare large
 * one drags in the big GEMMs), Poisson arrivals across --clients open-
 * loop client threads, and a deadline mixture (most requests unbounded, a
 * slice generous, a slice tight enough to exercise the expiry path).
 * The offered rate is set to ~55% of a measured closed-loop capacity so
 * the steady state is stable by construction — any drift the gates catch
 * is the server's, not the load generator's.
 *
 * Observability loop. The server runs with workers = 0 and the harness
 * owns one drain thread per queue shard, so common/alloc_count.hpp's
 * thread-local counters measure exactly the drain paths' heap traffic.
 * Admission control is ON (maxShardDepth) — the soak covers the
 * production shape, and Overloaded is a legal answer under backlog. A
 * NetServer runs over the same engine and a slice of the traffic
 * arrives through the socket path, so the epoll loop, framing and
 * completion plumbing soak alongside the kernels. Every window
 * (1-2 s) the harness scrapes the server registry + the process-global
 * registry, computes the window's completed-rate and p99 (from latency
 * histogram bucket DELTAS — the percentile of that window alone), reads
 * RSS from /proc/self/statm, and appends everything to a timeline JSON
 * (--timeline) written through the shared JsonWriter.
 *
 * Chaos. Mid-run the harness injects: a drain stall (the "worker wedged
 * mid-batch" fault — queue depth spikes, deadlines expire, then the
 * backlog drains), a shard drain-thread KILL + restart (the shard goes
 * dead for 300 ms, then the restarted thread must drain the backlog and
 * serve bit-identically again), a connection stalled MID-FRAME for a
 * second (half a Request frame held across a window — other connections
 * must keep being served, and completing the frame must still yield the
 * bit-exact answer), a malformed PackedOperand blob that MUST be
 * rejected by tryDeserialize (the registry-load fault), a
 * queue-overflow burst of tight-deadline requests (with admission on,
 * the shed + expiry counters together must absorb it), and a
 * worker-pool hog (a foreign parallelFor occupies the persistent pool,
 * forcing the server's GEMMs onto the spawn-per-call fallback — visible
 * in bbs_pool_fallback_total), and a model HOT-SWAP under load (the
 * most popular model re-packed into a BBMS container, mapped, and
 * atomically swapped into the registry mid-traffic — the clients'
 * per-request oracle checks must stay clean across the version bump).
 * Fault windows and one recovery window
 * after each are marked in the timeline and EXCLUDED from the gates.
 *
 * Drift gates, evaluated over the steady (post-warmup, non-fault)
 * windows; any failure exits non-zero:
 *   - p99 bounded (absolute cap) and not drifting (late-run median vs
 *     early-run median);
 *   - RSS plateau: the last steady window's RSS within 10% + slack of
 *     the first steady window's;
 *   - ZERO drain-thread heap allocations summed over steady windows;
 *   - completed-rate of every steady window within 10% of the first;
 *   - the final Prometheus exposition round-trips through
 *     obs::parsePrometheusText and agrees with the stats snapshot.
 *
 * Defaults are a short smoke (~20 s); nightly CI runs --seconds 180.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.hpp"
#include "common/alloc_count.hpp"
#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "engine/packed_operand.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "nn/layers.hpp"
#include "obs/exposition.hpp"
#include "serve/server.hpp"
#include "store/container.hpp"

namespace {

using namespace bbs;
using Clock = std::chrono::steady_clock;

// ------------------------------------------------------------- load model

/** Hosted model shapes: heavy-tailed input sizes, Zipf-ish popularity. */
struct ModelSpec
{
    const char *name;
    std::int64_t input, hidden, classes;
    double popularity;
};

constexpr ModelSpec kModels[] = {
    {"mobile", 128, 64, 16, 0.70},
    {"base", 512, 256, 64, 0.25},
    {"xl", 1024, 512, 64, 0.05},
};
constexpr std::size_t kNumModels = sizeof(kModels) / sizeof(kModels[0]);
constexpr std::size_t kPoolSize = 32; ///< distinct samples per model

/** Deadline mixture: none / generous / tight (µs). */
std::int64_t
drawDeadlineUs(Rng &rng)
{
    double u = rng.uniformReal(0.0, 1.0);
    if (u < 0.80)
        return 0;
    if (u < 0.95)
        return 100'000;
    return 20'000;
}

struct HostedModel
{
    std::string name;
    std::vector<std::vector<float>> pool;   ///< input samples
    std::vector<std::vector<float>> oracle; ///< forwardPerDot logits
};

// ----------------------------------------------------------- scrape utils

std::vector<obs::MetricSnapshot>
scrapeAll(const InferenceServer &server)
{
    std::vector<obs::MetricSnapshot> all = server.metrics().snapshot();
    std::vector<obs::MetricSnapshot> g = obs::Registry::global().snapshot();
    all.insert(all.end(), std::make_move_iterator(g.begin()),
               std::make_move_iterator(g.end()));
    return all;
}

const obs::MetricSnapshot *
findMetric(const std::vector<obs::MetricSnapshot> &ms, std::string_view name)
{
    for (const auto &m : ms)
        if (m.name == name)
            return &m;
    return nullptr;
}

std::uint64_t
counterValue(const std::vector<obs::MetricSnapshot> &ms,
             std::string_view name)
{
    const obs::MetricSnapshot *m = findMetric(ms, name);
    return m != nullptr ? m->counterValue : 0;
}

/**
 * The window's own p99, from the latency histogram's bucket deltas
 * between two scrapes: the smallest bucket bound covering >= 99% of the
 * observations that landed in this window. 0 when the window saw none.
 */
double
p99FromDeltas(const obs::MetricSnapshot *cur, const obs::MetricSnapshot *prev)
{
    if (cur == nullptr || prev == nullptr ||
        cur->bucketCounts.size() != prev->bucketCounts.size())
        return 0.0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cur->bucketCounts.size(); ++i)
        total += cur->bucketCounts[i] - prev->bucketCounts[i];
    if (total == 0)
        return 0.0;
    std::uint64_t target =
        total - static_cast<std::uint64_t>(0.01 * static_cast<double>(total));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < cur->bucketCounts.size(); ++i) {
        cum += cur->bucketCounts[i] - prev->bucketCounts[i];
        if (cum >= target)
            return i < cur->bounds.size() ? cur->bounds[i]
                                          : cur->bounds.back();
    }
    return cur->bounds.back();
}

/** Resident set size in KiB from /proc/self/statm; -1 when unreadable. */
long
rssKb()
{
    std::ifstream f("/proc/self/statm");
    long pages = 0, resident = 0;
    if (!(f >> pages >> resident))
        return -1;
    long pageKb = sysconf(_SC_PAGESIZE) / 1024;
    return resident * pageKb;
}

// ------------------------------------------------------------ fault marks

struct FaultEvent
{
    std::string name;
    double startS = 0.0;
    double endS = -1.0; ///< -1 while the fault is still in progress
};

class FaultLog
{
  public:
    std::size_t
    begin(const std::string &name, double atS)
    {
        std::lock_guard<std::mutex> lk(m_);
        events_.push_back({name, atS, -1.0});
        return events_.size() - 1;
    }

    void
    end(std::size_t idx, double atS)
    {
        std::lock_guard<std::mutex> lk(m_);
        events_[idx].endS = atS;
    }

    /** First event overlapping [fromS, toS]; empty string when none. */
    std::string
    overlap(double fromS, double toS) const
    {
        std::lock_guard<std::mutex> lk(m_);
        for (const FaultEvent &e : events_) {
            double end = e.endS < 0.0 ? 1e300 : e.endS;
            if (e.startS <= toS && end >= fromS)
                return e.name;
        }
        return "";
    }

    std::vector<FaultEvent>
    all() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return events_;
    }

  private:
    mutable std::mutex m_;
    std::vector<FaultEvent> events_;
};

// ---------------------------------------------------------------- windows

struct Window
{
    double tS = 0.0;       ///< window end, seconds since open-loop start
    double rps = 0.0;      ///< Ok completions / window
    double p99Us = 0.0;    ///< this window's p99 (bucket deltas)
    std::int64_t queueDepth = 0;
    long rssKb = -1;
    std::uint64_t drainAllocs = 0; ///< drain-thread heap allocations
    std::string fault;             ///< "" = clean; else fault/recovery name
    bool steady = false;           ///< participates in the drift gates
    std::vector<obs::MetricSnapshot> scrape; ///< full registry reading
};

struct ChaosReport
{
    bool blobCorruptRejected = false;
    bool blobTruncatedRejected = false;
    bool blobIntactAccepted = false;
    bool shardRestartServed = false; ///< killed shard serves after restart
    bool netStallServed = false;     ///< mid-frame stall completes to Ok
    std::uint64_t burstExpired = 0;
    std::uint64_t burstShed = 0; ///< burst requests answered Overloaded
    std::uint64_t hogFallbacks = 0;
    bool hogRan = false;
    std::uint64_t swapVersion = 0;    ///< registry version after hot-swap
    bool swapServedIdentical = false; ///< swapped-in engine is bit-exact
};

/**
 * The registry-load fault: a serialized PackedOperand is corrupted two
 * ways; tryDeserialize must reject both WITHOUT terminating, and must
 * still accept the intact blob afterwards.
 */
void
injectMalformedBlob(ChaosReport &report)
{
    Rng rng(0x0b10b);
    Int8Tensor w(Shape{16, 64});
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-100, 100));
    engine::PackOptions opts;
    opts.targetColumns = 4;
    engine::PackedOperand op = engine::PackedOperand::packCompressed(w, opts);
    std::vector<std::uint8_t> blob = op.serialize();

    engine::PackedOperand out;
    std::string error;

    std::vector<std::uint8_t> bad = blob;
    bad[0] ^= 0xff; // magic
    report.blobCorruptRejected =
        !engine::PackedOperand::tryDeserialize(bad, out, &error);

    std::vector<std::uint8_t> truncated(blob.begin(), blob.begin() + 9);
    report.blobTruncatedRejected =
        !engine::PackedOperand::tryDeserialize(truncated, out, &error);

    if (engine::PackedOperand::tryDeserialize(blob, out, nullptr)) {
        // Compression is lossy, so the reference is the ORIGINAL
        // operand's reconstruction, which the round trip must match
        // bit-exactly.
        Int8Tensor round = out.unpack(), ref = op.unpack();
        std::span<const std::int8_t> a = round.data(), b = ref.data();
        report.blobIntactAccepted =
            a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
    }
}

// ------------------------------------------------------------------ gates

struct GateResults
{
    bool p99Bounded = true;
    bool p99NoDrift = true;
    bool rssPlateau = true;
    bool allocFree = true;
    bool throughputStable = true;
    bool faultsHandled = true;
    bool promRoundTrip = true;

    bool
    all() const
    {
        return p99Bounded && p99NoDrift && rssPlateau && allocFree &&
               throughputStable && faultsHandled && promRoundTrip;
    }
};

constexpr double kP99CapUs = 250'000.0; ///< absolute steady p99 bound

double
medianOf(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    double seconds = 20.0;
    int clients = 64;
    std::string timelinePath;
    for (int i = 1; i + 1 < argc; ++i) {
        std::string a = argv[i];
        if (a == "--seconds")
            seconds = std::max(6.0, std::atof(argv[i + 1]));
        else if (a == "--clients")
            clients = std::max(1, std::atoi(argv[i + 1]));
        else if (a == "--timeline")
            timelinePath = argv[i + 1];
    }
    bench::jsonInit("soak_serve", argc, argv);
    bench::printHeader(
        "soak_serve",
        format("open-loop soak (%.0f s, %d clients) with fault injection: "
               "bounded p99, RSS plateau, zero drain-path allocations, "
               "stable throughput",
               seconds, clients));

    // ---- hosted models + per-sample oracles ---------------------------
    std::vector<HostedModel> models(kNumModels);
    auto registry = std::make_shared<ModelRegistry>();
    {
        Rng wrng(0x50a1c);
        for (std::size_t mi = 0; mi < kNumModels; ++mi) {
            const ModelSpec &spec = kModels[mi];
            Network net;
            net.add(std::make_unique<Dense>(spec.input, spec.hidden, wrng));
            net.add(std::make_unique<ReluLayer>());
            net.add(std::make_unique<Dense>(spec.hidden, spec.classes, wrng));
            registry->add(spec.name,
                          Int8Network::fromNetwork(
                              net, 32, 4, PruneStrategy::ZeroPointShifting));
            std::shared_ptr<const Int8Network> engine =
                registry->find(spec.name);

            HostedModel &hm = models[mi];
            hm.name = spec.name;
            hm.pool.resize(kPoolSize);
            hm.oracle.resize(kPoolSize);
            Rng prng(0xf00d + mi);
            for (std::size_t s = 0; s < kPoolSize; ++s) {
                hm.pool[s].resize(static_cast<std::size_t>(spec.input));
                for (float &v : hm.pool[s])
                    v = static_cast<float>(prng.uniformReal(-1.0, 1.0));
                Batch x(Shape{1, spec.input});
                for (std::int64_t c = 0; c < spec.input; ++c)
                    x.at(0, c) = hm.pool[s][static_cast<std::size_t>(c)];
                Batch y = engine->forwardPerDot(x);
                hm.oracle[s].resize(static_cast<std::size_t>(spec.classes));
                for (std::int64_t c = 0; c < spec.classes; ++c)
                    hm.oracle[s][static_cast<std::size_t>(c)] = y.at(0, c);
            }
        }
    }

    // ---- server: workers = 0, the harness owns one drain thread PER
    //      SHARD so the thread-local alloc counters measure exactly the
    //      drain paths. Admission control is on — the production shape.
    ServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.maxDelayUs = 1000;
    cfg.workers = 0;
    cfg.shards = 2;
    cfg.maxShardDepth = 4096;
    InferenceServer server(registry, cfg);
    const std::size_t kShards = server.queues().shardCount();
    // The shard the most popular model routes to: the stall and
    // kill/restart faults target it so the faulted shard is guaranteed
    // live traffic (a drain thread on an idle shard blocks in
    // drainOnce and would never observe its kill flag).
    const std::size_t victimShard =
        server.queues().indexFor(kModels[0].name);

    std::atomic<long long> stallUntilNs{0}; ///< drain-stall fault handle
    struct DrainShard
    {
        std::atomic<std::uint64_t> allocsPub{0};
        std::atomic<bool> kill{false};
        std::uint64_t allocBase = 0; ///< allocs of dead incarnations
        std::thread thread;
    };
    std::vector<DrainShard> drains(kShards);
    auto drainLoop = [&](std::size_t s) {
        DrainShard &ds = drains[s];
        std::uint64_t base = ds.allocBase;
        for (;;) {
            if (s == victimShard) {
                long long st =
                    stallUntilNs.load(std::memory_order_relaxed);
                long long now = Clock::now().time_since_epoch().count();
                if (st > now)
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(st - now));
            }
            if (ds.kill.load(std::memory_order_relaxed))
                break;
            if (server.drainOnce(s) == 0)
                break;
            ds.allocsPub.store(base + threadAllocCount(),
                               std::memory_order_relaxed);
        }
        // Hand the tally to the next incarnation (the kill/restart
        // fault joins this thread before starting the next one).
        ds.allocBase = base + threadAllocCount();
        ds.allocsPub.store(ds.allocBase, std::memory_order_relaxed);
    };
    for (std::size_t s = 0; s < kShards; ++s)
        drains[s].thread = std::thread(drainLoop, s);
    auto drainAllocsTotal = [&] {
        std::uint64_t sum = 0;
        for (const DrainShard &d : drains)
            sum += d.allocsPub.load(std::memory_order_relaxed);
        return sum;
    };

    // ---- network front-end over the same engine: a slice of the soak
    //      traffic arrives through the socket path.
    net::NetServer netServer(server, net::NetServerConfig{});
    netServer.start();

    std::atomic<std::uint64_t> mismatches{0};
    auto checkResponse = [&](std::size_t mi, std::size_t sample,
                             InferenceResponse r) {
        if (r.status == ServeStatus::Ok) {
            if (r.logits != models[mi].oracle[sample])
                mismatches.fetch_add(1);
        } else if (r.status != ServeStatus::DeadlineExpired &&
                   r.status != ServeStatus::ShutDown &&
                   r.status != ServeStatus::Overloaded) {
            // Overloaded is legal here: admission control is armed, so
            // backlogs behind a stalled/killed drain shed at the door.
            mismatches.fetch_add(1);
        }
    };

    // ---- phase 1: closed-loop calibration (doubles as warm-up: every
    //      model's plans tune, the pool and per-thread buffers reach
    //      their high-water marks before any gated measurement).
    double capacityRps = 0.0;
    {
        std::atomic<bool> calibrating{true};
        std::vector<std::thread> calib;
        for (int t = 0; t < clients; ++t) {
            calib.emplace_back([&, t] {
                std::size_t i = 0;
                while (calibrating.load(std::memory_order_relaxed)) {
                    std::size_t mi = (static_cast<std::size_t>(t) + i) %
                                     kNumModels;
                    std::size_t s = i % kPoolSize;
                    checkResponse(
                        mi, s,
                        server.submit(models[mi].name, models[mi].pool[s])
                            .get());
                    ++i;
                }
            });
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1200));
        auto c0 = scrapeAll(server);
        auto t0 = Clock::now();
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
        auto c1 = scrapeAll(server);
        auto t1 = Clock::now();
        calibrating.store(false);
        for (auto &th : calib)
            th.join();
        double dt = std::chrono::duration<double>(t1 - t0).count();
        capacityRps =
            static_cast<double>(
                counterValue(c1, "bbs_serve_requests_completed_total") -
                counterValue(c0, "bbs_serve_requests_completed_total")) /
            dt;
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
    double offeredRps = std::max(50.0, 0.55 * capacityRps);
    std::cout << format("closed-loop capacity %.0f req/s -> open-loop "
                        "offered rate %.0f req/s\n",
                        capacityRps, offeredRps);

    // ---- phase 2: open-loop soak --------------------------------------
    const double windowS = seconds >= 60.0 ? 2.0 : 1.0;
    const auto openStart = Clock::now();
    auto sinceStart = [&](Clock::time_point t) {
        return std::chrono::duration<double>(t - openStart).count();
    };
    std::atomic<bool> running{true};
    FaultLog faults;

    // Popularity CDF for the Zipf-like model draw.
    double cdf[kNumModels];
    {
        double acc = 0.0;
        for (std::size_t i = 0; i < kNumModels; ++i)
            cdf[i] = (acc += kModels[i].popularity);
    }

    std::vector<std::thread> load;
    double perClientRate = offeredRps / clients;
    for (int t = 0; t < clients; ++t) {
        load.emplace_back([&, t] {
            Rng rng(0xc11e47 + static_cast<std::uint64_t>(t) * 7919);
            struct Pending
            {
                std::size_t mi, sample;
                std::future<InferenceResponse> fut;
            };
            std::deque<Pending> pending;
            auto reap = [&](bool block) {
                while (!pending.empty()) {
                    bool ready =
                        pending.front().fut.wait_for(
                            std::chrono::seconds(0)) ==
                        std::future_status::ready;
                    if (!ready && !block && pending.size() <= 256)
                        return;
                    Pending p = std::move(pending.front());
                    pending.pop_front();
                    checkResponse(p.mi, p.sample, p.fut.get());
                    if (!block && pending.size() <= 256)
                        return;
                }
            };
            auto next = Clock::now();
            while (running.load(std::memory_order_relaxed)) {
                double gapS = -std::log(1.0 - rng.uniformReal(0.0, 1.0)) /
                              perClientRate;
                next += std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(gapS));
                std::this_thread::sleep_until(next);
                if (!running.load(std::memory_order_relaxed))
                    break;
                double u = rng.uniformReal(0.0, 1.0);
                std::size_t mi = 0;
                while (mi + 1 < kNumModels && u > cdf[mi])
                    ++mi;
                std::size_t s = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(kPoolSize) - 1));
                Pending p;
                p.mi = mi;
                p.sample = s;
                p.fut = server.submit(models[mi].name, models[mi].pool[s],
                                      drawDeadlineUs(rng));
                pending.push_back(std::move(p));
                reap(false);
            }
            reap(true);
        });
    }

    // ---- net clients: light closed-loop traffic through the socket
    //      front-end for the whole open-loop phase (constant extra load,
    //      so the throughput gate's baseline includes it).
    constexpr int kNetClients = 2;
    std::atomic<std::uint64_t> netOk{0}, netShed{0}, netErrors{0};
    std::vector<std::thread> netLoad;
    for (int t = 0; t < kNetClients; ++t) {
        netLoad.emplace_back([&, t] {
            net::NetClient client;
            if (!client.connect("127.0.0.1", netServer.port(),
                                /*recvTimeoutMs=*/30000)) {
                netErrors.fetch_add(1);
                return;
            }
            std::size_t i = 0;
            while (running.load(std::memory_order_relaxed)) {
                std::size_t mi =
                    (static_cast<std::size_t>(t) + i) % kNumModels;
                std::size_t s = i % kPoolSize;
                auto resp =
                    client.request(models[mi].name, models[mi].pool[s]);
                if (!resp.has_value()) {
                    netErrors.fetch_add(1);
                    break;
                }
                auto status = static_cast<ServeStatus>(resp->status);
                if (status == ServeStatus::Ok) {
                    if (resp->logits == models[mi].oracle[s])
                        netOk.fetch_add(1);
                    else
                        mismatches.fetch_add(1);
                } else if (status == ServeStatus::Overloaded) {
                    netShed.fetch_add(1);
                } else if (status != ServeStatus::ShutDown) {
                    mismatches.fetch_add(1);
                }
                ++i;
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
            }
        });
    }

    // ---- chaos thread: scheduled faults at fixed fractions of the run.
    ChaosReport chaos;
    std::thread chaosThread([&] {
        auto sleepUntilFrac = [&](double frac) {
            auto target = openStart + std::chrono::duration_cast<
                                          Clock::duration>(
                                          std::chrono::duration<double>(
                                              frac * seconds));
            while (Clock::now() < target) {
                if (!running.load(std::memory_order_relaxed))
                    return false;
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
            }
            return running.load(std::memory_order_relaxed);
        };

        // Fault 1: the drain "worker" wedges for 400 ms mid-run.
        if (sleepUntilFrac(0.25)) {
            std::size_t ev =
                faults.begin("drain-stall", sinceStart(Clock::now()));
            stallUntilNs.store(
                (Clock::now() + std::chrono::milliseconds(400))
                    .time_since_epoch()
                    .count(),
                std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::milliseconds(450));
            faults.end(ev, sinceStart(Clock::now()));
        }

        // Fault 2: kill the victim shard's drain thread outright, leave
        // the shard dead for 300 ms, restart it. The backlog must drain
        // and the shard must serve bit-identically again; the OTHER
        // shard keeps serving throughout.
        if (sleepUntilFrac(0.35)) {
            std::size_t ev = faults.begin("shard-drain-kill",
                                          sinceStart(Clock::now()));
            DrainShard &ds = drains[victimShard];
            ds.kill.store(true, std::memory_order_relaxed);
            ds.thread.join();
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            ds.kill.store(false, std::memory_order_relaxed);
            ds.thread = std::thread(drainLoop, victimShard);
            InferenceResponse probe =
                server.submit(models[0].name, models[0].pool[0]).get();
            chaos.shardRestartServed =
                probe.status == ServeStatus::Ok &&
                probe.logits == models[0].oracle[0];
            faults.end(ev, sinceStart(Clock::now()));
        }

        // Fault 3: a connection stalls MID-FRAME — half a Request frame,
        // then a one-second hold with the listener's framing state
        // parked — while the net clients keep being served. Completing
        // the frame must still yield the bit-exact answer.
        if (sleepUntilFrac(0.44)) {
            std::size_t ev = faults.begin("net-midframe-stall",
                                          sinceStart(Clock::now()));
            net::NetClient stall;
            if (stall.connect("127.0.0.1", netServer.port(),
                              /*recvTimeoutMs=*/10000)) {
                net::RequestFrame r;
                r.tag = 0x57a11;
                r.model = models[0].name;
                r.input = models[0].pool[3];
                std::vector<std::uint8_t> frame;
                net::encodeRequest(r, frame);
                std::size_t half = frame.size() / 2;
                if (stall.sendRaw(frame.data(), half)) {
                    std::this_thread::sleep_for(std::chrono::seconds(1));
                    net::ResponseFrame resp;
                    chaos.netStallServed =
                        stall.sendRaw(frame.data() + half,
                                      frame.size() - half) &&
                        stall.recvResponse(resp) && resp.tag == r.tag &&
                        static_cast<ServeStatus>(resp.status) ==
                            ServeStatus::Ok &&
                        resp.logits == models[0].oracle[3];
                }
            }
            faults.end(ev, sinceStart(Clock::now()));
        }

        // Fault 4: malformed operand blob at "registry load" — must be
        // rejected without terminating, and serving must not notice.
        if (sleepUntilFrac(0.52)) {
            std::size_t ev =
                faults.begin("malformed-blob", sinceStart(Clock::now()));
            injectMalformedBlob(chaos);
            faults.end(ev, sinceStart(Clock::now()));
        }

        // Fault 5: queue-overflow burst of tight-deadline requests;
        // with admission armed most are shed with Overloaded at the
        // door, the remainder expires — between them the burst must be
        // fully absorbed.
        if (sleepUntilFrac(0.62)) {
            std::size_t ev =
                faults.begin("queue-burst", sinceStart(Clock::now()));
            auto before = server.metrics().snapshot();
            std::uint64_t beforeExpired = counterValue(
                before, "bbs_serve_requests_expired_total");
            std::uint64_t beforeShed = counterValue(
                before, "bbs_serve_requests_overloaded_total");
            for (int i = 0; i < 2048; ++i)
                (void)server.submit(
                    models[0].name,
                    models[0].pool[static_cast<std::size_t>(i) % kPoolSize],
                    /*deadlineUs=*/100);
            std::this_thread::sleep_for(std::chrono::milliseconds(800));
            auto after = server.metrics().snapshot();
            chaos.burstExpired =
                counterValue(after, "bbs_serve_requests_expired_total") -
                beforeExpired;
            chaos.burstShed =
                counterValue(after,
                             "bbs_serve_requests_overloaded_total") -
                beforeShed;
            faults.end(ev, sinceStart(Clock::now()));
        }

        // Fault 6: a foreign parallelFor hogs the persistent worker
        // pool; the server's GEMMs must fall back (and keep serving).
        if (sleepUntilFrac(0.75) && maxWorkerThreads() > 1) {
            chaos.hogRan = true;
            std::size_t ev =
                faults.begin("pool-hog", sinceStart(Clock::now()));
            std::uint64_t before = counterValue(
                obs::Registry::global().snapshot(), "bbs_pool_fallback_total");
            std::int64_t n =
                static_cast<std::int64_t>(maxWorkerThreads()) * 100;
            parallelFor(
                n,
                [](std::int64_t) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(4));
                },
                /*chunk=*/1);
            chaos.hogFallbacks =
                counterValue(obs::Registry::global().snapshot(),
                             "bbs_pool_fallback_total") -
                before;
            faults.end(ev, sinceStart(Clock::now()));
        }

        // Fault 7: model hot-swap under load — the most popular model
        // is packed into a BBMS container, mapped back, and atomically
        // swapped into the registry mid-traffic. The weights are
        // identical, so the open-loop clients' per-request oracle
        // checks double as the zero-divergence proof; here we pin the
        // version bump and one bit-exact probe through the swapped-in
        // mapped engine.
        if (sleepUntilFrac(0.85)) {
            std::size_t ev =
                faults.begin("model-hot-swap", sinceStart(Clock::now()));
            std::string swapPath = "/tmp/bbs_soak_swap_" +
                                   std::to_string(::getpid()) + ".bbms";
            std::shared_ptr<const Int8Network> current =
                registry->find(models[0].name);
            store::writeModelContainer(*current, swapPath);
            std::shared_ptr<const store::MappedContainer> container;
            if (store::MappedContainer::tryOpen(swapPath, container)) {
                chaos.swapVersion = registry->swap(
                    models[0].name, std::make_shared<const Int8Network>(
                                        store::mapModel(container)));
                InferenceResponse probe =
                    server.submit(models[0].name, models[0].pool[5]).get();
                chaos.swapServedIdentical =
                    probe.status == ServeStatus::Ok &&
                    probe.logits == models[0].oracle[5];
            }
            std::remove(swapPath.c_str()); // mapping survives the unlink
            faults.end(ev, sinceStart(Clock::now()));
        }
    });

    // ---- windowed scraping on the main thread -------------------------
    std::vector<Window> windows;
    std::vector<obs::MetricSnapshot> prevScrape = scrapeAll(server);
    std::uint64_t prevAllocs = drainAllocsTotal();
    int numWindows = static_cast<int>(seconds / windowS);
    for (int w = 0; w < numWindows; ++w) {
        std::this_thread::sleep_until(
            openStart +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>((w + 1) * windowS)));
        Window win;
        win.scrape = scrapeAll(server);
        win.tS = sinceStart(Clock::now());
        win.rps = static_cast<double>(
                      counterValue(win.scrape,
                                   "bbs_serve_requests_completed_total") -
                      counterValue(prevScrape,
                                   "bbs_serve_requests_completed_total")) /
                  windowS;
        win.p99Us =
            p99FromDeltas(findMetric(win.scrape, "bbs_serve_latency_us"),
                          findMetric(prevScrape, "bbs_serve_latency_us"));
        // With shards > 1 the depth gauge is per shard (labelled);
        // the window records the sum.
        for (const obs::MetricSnapshot &m : win.scrape)
            if (m.name == "bbs_serve_queue_depth")
                win.queueDepth += m.gaugeValue;
        win.rssKb = rssKb();
        std::uint64_t allocsNow = drainAllocsTotal();
        win.drainAllocs = allocsNow - prevAllocs;
        prevAllocs = allocsNow;

        double winStart = w * windowS, winEnd = (w + 1) * windowS;
        win.fault = faults.overlap(winStart, winEnd);
        if (win.fault.empty()) {
            // One recovery window after each fault is excluded too: the
            // backlog from a stall drains into it.
            std::string prior = faults.overlap(winStart - windowS, winEnd);
            if (!prior.empty())
                win.fault = "recovery:" + prior;
        }
        win.steady = w >= 2 && win.fault.empty();
        prevScrape = win.scrape;
        windows.push_back(std::move(win));
    }

    // ---- wind down: clients finish (their pending futures resolve while
    //      the drain thread still runs), then the server stops and the
    //      drain loop sees 0.
    running.store(false);
    for (auto &th : load)
        th.join();
    for (auto &th : netLoad)
        th.join();
    chaosThread.join();
    StatsSnapshot finalStats = server.stats();
    std::string promText = server.metricsText(/*includeGlobal=*/true);
    netServer.stop();
    server.stop();
    for (auto &d : drains)
        d.thread.join();

    // ---- report -------------------------------------------------------
    Table table({"t", "fault", "req/s", "p99", "queue", "rss", "allocs"});
    for (const Window &w : windows)
        table.addRow({format("%5.1fs", w.tS),
                      w.fault.empty() ? (w.steady ? "" : "warmup") : w.fault,
                      format("%.0f", w.rps), format("%.2f ms", w.p99Us / 1e3),
                      format("%lld", static_cast<long long>(w.queueDepth)),
                      format("%ld MB", w.rssKb / 1024),
                      format("%llu",
                             static_cast<unsigned long long>(w.drainAllocs))});
    table.print(std::cout);

    GateResults gates;
    std::vector<const Window *> steady;
    for (const Window &w : windows)
        if (w.steady)
            steady.push_back(&w);

    BBS_REQUIRE(mismatches.load() == 0, mismatches.load(),
                " responses deviated from the per-request oracle");
    BBS_REQUIRE(steady.size() >= 3,
                "soak produced only ", steady.size(),
                " steady windows; run longer (--seconds)");

    // p99: absolute cap on every steady window, plus no late-run drift.
    std::vector<double> p99s;
    std::uint64_t steadyAllocs = 0;
    for (const Window *w : steady) {
        p99s.push_back(w->p99Us);
        if (w->p99Us > kP99CapUs)
            gates.p99Bounded = false;
        steadyAllocs += w->drainAllocs;
    }
    if (steady.size() >= 6) {
        std::vector<double> early(p99s.begin(),
                                  p99s.begin() + p99s.size() / 2);
        std::vector<double> late(p99s.begin() + p99s.size() / 2, p99s.end());
        if (medianOf(late) > 4.0 * medianOf(early) + 2000.0)
            gates.p99NoDrift = false;
    }

    // RSS plateau: final steady RSS within 10% + 16 MiB of the first.
    long rss0 = steady.front()->rssKb, rss1 = steady.back()->rssKb;
    if (rss0 > 0 && rss1 > 0 &&
        static_cast<double>(rss1) > 1.10 * static_cast<double>(rss0) + 16384.0)
        gates.rssPlateau = false;

    // Zero drain-thread allocations across every steady window.
    gates.allocFree = steadyAllocs == 0;

    // Throughput: every steady window within 10% of the first (+ a small
    // absolute floor so low offered rates don't amplify Poisson noise).
    double rps0 = steady.front()->rps;
    for (const Window *w : steady)
        if (std::abs(w->rps - rps0) > 0.10 * rps0 + 20.0)
            gates.throughputStable = false;

    // Faults must have been HANDLED, not merely survived: the blobs
    // rejected, the killed shard serving again after restart, the
    // mid-frame stall completed to a bit-exact answer, and the net
    // clients' traffic clean throughout.
    gates.faultsHandled =
        chaos.blobCorruptRejected && chaos.blobTruncatedRejected &&
        chaos.blobIntactAccepted && chaos.shardRestartServed &&
        chaos.netStallServed && chaos.swapVersion >= 2 &&
        chaos.swapServedIdentical && netErrors.load() == 0 &&
        netOk.load() > 0;

    // The exposition must round-trip through the parser and agree with
    // the stats snapshot (same counters, two readings).
    {
        obs::ParsedExposition parsed;
        gates.promRoundTrip = obs::parsePrometheusText(promText, parsed);
        if (gates.promRoundTrip) {
            const obs::ParsedSample *c =
                parsed.find("bbs_serve_requests_completed_total");
            gates.promRoundTrip =
                c != nullptr &&
                static_cast<std::uint64_t>(c->value) >= finalStats.completed;
            const obs::ParsedSample *lc =
                parsed.find("bbs_serve_latency_us_count");
            if (lc == nullptr)
                gates.promRoundTrip = false;
            // The net layer's counters ride the same registry.
            if (parsed.find("bbs_net_frames_in_total") == nullptr)
                gates.promRoundTrip = false;
        }
    }

    std::cout << format(
        "\nsteady windows %zu/%zu | median p99 %.2f ms | rss %ld -> %ld MB "
        "| drain allocs %llu | burst shed+expired %llu+%llu | pool "
        "fallbacks %llu%s\n",
        steady.size(), windows.size(), medianOf(p99s) / 1e3, rss0 / 1024,
        rss1 / 1024, static_cast<unsigned long long>(steadyAllocs),
        static_cast<unsigned long long>(chaos.burstShed),
        static_cast<unsigned long long>(chaos.burstExpired),
        static_cast<unsigned long long>(chaos.hogFallbacks),
        chaos.hogRan ? "" : " (hog skipped: 1 worker)");
    std::cout << format(
        "net: %llu ok, %llu shed, %llu errors | shard restart served %s | "
        "mid-frame stall served %s | hot-swap v%llu served %s\n",
        static_cast<unsigned long long>(netOk.load()),
        static_cast<unsigned long long>(netShed.load()),
        static_cast<unsigned long long>(netErrors.load()),
        chaos.shardRestartServed ? "yes" : "NO",
        chaos.netStallServed ? "yes" : "NO",
        static_cast<unsigned long long>(chaos.swapVersion),
        chaos.swapServedIdentical ? "yes" : "NO");

    auto verdict = [](bool ok) { return ok ? "ok" : "FAILED"; };
    std::cout << format(
        "gates: p99-bounded %s | p99-drift %s | rss-plateau %s | "
        "alloc-free %s | throughput %s | faults-handled %s | "
        "prom-round-trip %s\n",
        verdict(gates.p99Bounded), verdict(gates.p99NoDrift),
        verdict(gates.rssPlateau), verdict(gates.allocFree),
        verdict(gates.throughputStable), verdict(gates.faultsHandled),
        verdict(gates.promRoundTrip));

    bench::jsonAdd("soak", "summary",
                   {{"capacity_rps", capacityRps},
                    {"offered_rps", offeredRps},
                    {"steady_windows", static_cast<double>(steady.size())},
                    {"median_p99_us", medianOf(p99s)},
                    {"rss_first_kb", static_cast<double>(rss0)},
                    {"rss_last_kb", static_cast<double>(rss1)},
                    {"drain_allocs", static_cast<double>(steadyAllocs)},
                    {"burst_expired",
                     static_cast<double>(chaos.burstExpired)},
                    {"burst_shed", static_cast<double>(chaos.burstShed)},
                    {"net_ok", static_cast<double>(netOk.load())},
                    {"net_shed", static_cast<double>(netShed.load())},
                    {"shard_restart_served",
                     chaos.shardRestartServed ? 1.0 : 0.0},
                    {"net_stall_served", chaos.netStallServed ? 1.0 : 0.0},
                    {"swap_version",
                     static_cast<double>(chaos.swapVersion)},
                    {"swap_served",
                     chaos.swapServedIdentical ? 1.0 : 0.0},
                    {"passed", gates.all() ? 1.0 : 0.0}});
    bench::jsonFlush();

    // ---- timeline JSON (--timeline): config, faults, per-window scrape
    //      of BOTH registries, final trace-ring dump, gate verdicts.
    if (!timelinePath.empty()) {
        std::ofstream out(timelinePath);
        BBS_REQUIRE(out.good(), "cannot open --timeline path ",
                    timelinePath);
        JsonWriter j(out);
        j.beginObject();
        j.member("bench", "soak_serve");
        j.member("seconds", seconds);
        j.member("clients", clients);
        j.member("window_s", windowS);
        j.member("capacity_rps", capacityRps);
        j.member("offered_rps", offeredRps);
        j.key("faults");
        j.beginArray();
        for (const FaultEvent &e : faults.all()) {
            j.beginObject();
            j.member("fault", e.name);
            j.member("start_s", e.startS);
            j.member("end_s", e.endS);
            j.endObject();
        }
        j.endArray();
        j.key("windows");
        j.beginArray();
        for (const Window &w : windows) {
            j.beginObject();
            j.member("t_s", w.tS);
            j.member("rps", w.rps);
            j.member("p99_us", w.p99Us);
            j.member("queue_depth", w.queueDepth);
            j.member("rss_kb", static_cast<std::int64_t>(w.rssKb));
            j.member("drain_allocs", w.drainAllocs);
            j.member("fault", w.fault);
            j.member("steady", w.steady);
            j.key("scrape");
            obs::writeJsonRecords(w.scrape, j);
            j.endObject();
        }
        j.endArray();
        j.key("trace");
        {
            std::ostringstream trace;
            server.dumpTrace(trace);
            j.raw(trace.str());
        }
        j.key("gates");
        j.beginObject();
        j.member("p99_bounded", gates.p99Bounded);
        j.member("p99_no_drift", gates.p99NoDrift);
        j.member("rss_plateau", gates.rssPlateau);
        j.member("alloc_free", gates.allocFree);
        j.member("throughput_stable", gates.throughputStable);
        j.member("faults_handled", gates.faultsHandled);
        j.member("prom_round_trip", gates.promRoundTrip);
        j.member("passed", gates.all());
        j.endObject();
        j.endObject();
        BBS_REQUIRE(j.complete() && out.good(),
                    "failed writing --timeline path ", timelinePath);
        std::cout << "timeline written to " << timelinePath << "\n";
    }

    std::cout << (gates.all() ? "\nSOAK PASSED\n" : "\nSOAK FAILED\n");
    return gates.all() ? 0 : 1;
}
