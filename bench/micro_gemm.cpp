/**
 * @file
 * Batched GEMM engine vs. the per-sample compressed-dot loop.
 *
 * The same BBS-compressed layer (K=256 channels, C=512 features, group
 * 32, 4 pruned columns) is executed over batches of {1, 16, 64, 256}
 * samples two ways:
 *
 *  - per-dot: the pre-PR2 inference inner loop — one dotCompressed() per
 *    (sample, output channel), repacking each group's planes per call;
 *  - GEMM: BitSerialMatrix::pack once per batch + gemmCompressed()
 *    (packing time included — this is the end-to-end serving cost).
 *
 * Outputs are checked for exact equality, a throughput table is printed,
 * and the run fails unless the GEMM engine is >= 4x faster at every
 * batch size >= 64 (the CI Release gate).
 */
#include <chrono>
#include <functional>
#include <iostream>

#include "bench/bench_common.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/bbs_dot.hpp"
#include "gemm/compressed_gemm.hpp"
#include "gemm/gemm.hpp"

namespace {

using namespace bbs;

double
secondsOf(const std::function<void()> &fn, int reps)
{
    // One warm-up, then the best of `reps` (least-noise estimator).
    fn();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

Int8Tensor
randomCodes(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t(Shape{rows, cols});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return t;
}

} // namespace

int
main()
{
    bench::printHeader(
        "micro_gemm",
        "the batched compressed-domain GEMM engine is >= 4x faster than "
        "the per-sample dotCompressed loop at batch >= 64");

    const std::int64_t k = 256;        // output channels
    const std::int64_t c = 512;        // input features
    const std::int64_t groupSize = 32;
    const int targetColumns = 4;

    Int8Tensor codes = randomCodes(k, c, 0x9e3779b9);
    CompressedTensor ct = CompressedTensor::compress(
        codes, groupSize, targetColumns, PruneStrategy::ZeroPointShifting);
    CompressedRowPlanes planes = CompressedRowPlanes::prepare(ct);
    const std::vector<CompressedGroup> &groups = ct.groups();
    const std::int64_t groupsPerRow = c / groupSize;

    // The pre-PR2 inference inner loop, preserved verbatim as baseline.
    auto perDotLoop = [&](const Int8Tensor &acts, Int32Tensor &out) {
        std::int64_t n = acts.shape().dim(0);
        parallelFor(k, [&](std::int64_t o) {
            for (std::int64_t row = 0; row < n; ++row) {
                std::int64_t acc = 0;
                std::int64_t begin = 0;
                for (std::int64_t g = 0; g < groupsPerRow; ++g) {
                    const CompressedGroup &cg =
                        groups[static_cast<std::size_t>(
                            o * groupsPerRow + g)];
                    std::span<const std::int8_t> a(&acts.at(row, begin),
                                                   cg.stored.size());
                    acc += dotCompressed(cg, a).value;
                    begin += static_cast<std::int64_t>(cg.stored.size());
                }
                out.at(row, o) = static_cast<std::int32_t>(acc);
            }
        }, 2);
    };

    Table table({"batch", "per-dot", "GEMM", "speedup"});
    bool gatePassed = true;
    for (std::int64_t batch : {1, 16, 64, 256}) {
        Int8Tensor acts = randomCodes(batch, c, 0xabcd00 + batch);
        const double macs =
            static_cast<double>(batch) * static_cast<double>(k) *
            static_cast<double>(c);

        Int32Tensor refOut(Shape{batch, k});
        double dotS = secondsOf([&] { perDotLoop(acts, refOut); }, 5);

        Int32Tensor gemmOut;
        double gemmS = secondsOf(
            [&] {
                gemmOut =
                    gemmCompressed(planes, BitSerialMatrix::pack(acts));
            },
            5);

        for (std::int64_t i = 0; i < refOut.numel(); ++i)
            if (gemmOut.flat(i) != refOut.flat(i))
                BBS_PANIC("GEMM/per-dot mismatch at batch ", batch,
                          ", i=", i);

        double speedup = dotS / gemmS;
        if (batch >= 64 && speedup < 4.0)
            gatePassed = false;
        table.addRow({format("%lld", static_cast<long long>(batch)),
                      format("%.1f MMAC/s", macs / dotS / 1e6),
                      format("%.1f MMAC/s", macs / gemmS / 1e6),
                      bench::times(speedup)});
    }
    table.print(std::cout);

    // Context row: the dense bit-serial kernel vs the naive int8 GEMM.
    {
        const std::int64_t batch = 64;
        Int8Tensor acts = randomCodes(batch, c, 0xd1ce);
        BitSerialMatrix wp = BitSerialMatrix::pack(codes);
        Int32Tensor bsOut, refOut;
        double bsS = secondsOf(
            [&] {
                bsOut = gemmBitSerial(BitSerialMatrix::pack(acts), wp);
            },
            5);
        double refS = secondsOf(
            [&] { refOut = gemmReferenceBatch(acts, codes); }, 5);
        for (std::int64_t i = 0; i < refOut.numel(); ++i)
            if (bsOut.flat(i) != refOut.flat(i))
                BBS_PANIC("dense bit-serial GEMM mismatch at i=", i);
        std::cout << "\ndense gemmBitSerial vs naive reference at batch "
                  << batch << ": " << bench::times(refS / bsS) << "\n";
    }

    std::cout << (gatePassed
                      ? "\nGEMM speedup target (>= 4x at batch >= 64) met\n"
                      : "\nGEMM speedup BELOW the 4x target at batch >= "
                        "64!\n");
    return gatePassed ? 0 : 1;
}
