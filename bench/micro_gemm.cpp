/**
 * @file
 * Batched GEMM engine vs. the per-sample compressed-dot loop.
 *
 * The same BBS-compressed layer (K=256 channels, C=512 features, group
 * 32, 4 pruned columns) is executed over batches of {1, 16, 64, 256}
 * samples two ways:
 *
 *  - per-dot: the pre-PR2 inference inner loop — one dotCompressed() per
 *    (sample, output channel), repacking each group's planes per call;
 *  - GEMM: BitSerialMatrix::pack once per batch + gemmCompressed()
 *    (packing time included — this is the end-to-end serving cost).
 *
 * Outputs are checked for exact equality, a throughput table is printed,
 * and the run fails unless the GEMM engine is >= 4x faster at every
 * batch size >= 64 (the CI Release gate).
 *
 * A second section autotunes the bench shape in-process, deploys the
 * resulting tuning cache into one engine::Session and pins a second
 * Session to the hand heuristic (tuneCachePath = "none"), then runs the
 * same plan at batches {1, 8, 64, 256} through both: outputs must be
 * bit-identical and the tuned geomean must be >= 1.0x the heuristic
 * (measured decisions are never allowed to lose to the hand-rolled
 * crossovers — the CI autotune-job gate).
 *
 * A third section compares the SIMD dispatch levels on the GEMM-side
 * kernels (src/simd/): the 2x1x2 AND+popcount tile, the plain
 * AND+popcount stream, and the compressed-group dot are timed at the
 * active level vs the BBS_SIMD=scalar table on identical L1-resident
 * data (gated at bench_common's per-level geomean target), and both
 * whole GEMMs are re-run under scalar dispatch to report the end-to-end
 * effect with bit-identical outputs.
 */
#include <chrono>
#include <cmath>
#include <filesystem>
#include <functional>
#include <iostream>

#include "bench/bench_common.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/bbs_dot.hpp"
#include "engine/engine.hpp"
#include "gemm/compressed_gemm.hpp"
#include "gemm/gemm.hpp"
#include "simd/simd.hpp"

namespace {

using namespace bbs;

double
secondsOf(const std::function<void()> &fn, int reps)
{
    // One warm-up, then the best of `reps` (least-noise estimator).
    fn();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

Int8Tensor
randomCodes(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t(Shape{rows, cols});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::jsonInit("micro_gemm", argc, argv);
    bench::printHeader(
        "micro_gemm",
        "the batched compressed-domain GEMM engine is >= 4x faster than "
        "the per-sample dotCompressed loop at batch >= 64");

    const std::int64_t k = 256;        // output channels
    const std::int64_t c = 512;        // input features
    const std::int64_t groupSize = 32;
    const int targetColumns = 4;

    Int8Tensor codes = randomCodes(k, c, 0x9e3779b9);
    CompressedTensor ct = CompressedTensor::compress(
        codes, groupSize, targetColumns, PruneStrategy::ZeroPointShifting);
    CompressedRowPlanes planes = CompressedRowPlanes::prepare(ct);
    const std::vector<CompressedGroup> &groups = ct.groups();
    const std::int64_t groupsPerRow = c / groupSize;

    // The pre-PR2 inference inner loop, preserved verbatim as baseline.
    auto perDotLoop = [&](const Int8Tensor &acts, Int32Tensor &out) {
        std::int64_t n = acts.shape().dim(0);
        parallelFor(k, [&](std::int64_t o) {
            for (std::int64_t row = 0; row < n; ++row) {
                std::int64_t acc = 0;
                std::int64_t begin = 0;
                for (std::int64_t g = 0; g < groupsPerRow; ++g) {
                    const CompressedGroup &cg =
                        groups[static_cast<std::size_t>(
                            o * groupsPerRow + g)];
                    std::span<const std::int8_t> a(&acts.at(row, begin),
                                                   cg.stored.size());
                    acc += dotCompressed(cg, a).value;
                    begin += static_cast<std::int64_t>(cg.stored.size());
                }
                out.at(row, o) = static_cast<std::int32_t>(acc);
            }
        }, 2);
    };

    Table table({"batch", "per-dot", "GEMM", "speedup"});
    bool gatePassed = true;
    for (std::int64_t batch : {1, 16, 64, 256}) {
        Int8Tensor acts = randomCodes(batch, c, 0xabcd00 + batch);
        const double macs =
            static_cast<double>(batch) * static_cast<double>(k) *
            static_cast<double>(c);

        Int32Tensor refOut(Shape{batch, k});
        double dotS = secondsOf([&] { perDotLoop(acts, refOut); }, 5);

        Int32Tensor gemmOut;
        double gemmS = secondsOf(
            [&] {
                gemmOut =
                    gemmCompressed(planes, BitSerialMatrix::pack(acts));
            },
            5);

        for (std::int64_t i = 0; i < refOut.numel(); ++i)
            if (gemmOut.flat(i) != refOut.flat(i))
                BBS_PANIC("GEMM/per-dot mismatch at batch ", batch,
                          ", i=", i);

        double speedup = dotS / gemmS;
        if (batch >= 64 && speedup < 4.0)
            gatePassed = false;
        table.addRow({format("%lld", static_cast<long long>(batch)),
                      format("%.1f MMAC/s", macs / dotS / 1e6),
                      format("%.1f MMAC/s", macs / gemmS / 1e6),
                      bench::times(speedup)});
        bench::jsonAdd("gemmCompressed-vs-perdot",
                       format("batch=%lld", static_cast<long long>(batch)),
                       {{"perdot_mmacs", macs / dotS / 1e6},
                        {"gemm_mmacs", macs / gemmS / 1e6},
                        {"speedup", speedup}});
    }
    table.print(std::cout);

    // Context row: the dense bit-serial kernel vs the naive int8 GEMM.
    {
        const std::int64_t batch = 64;
        Int8Tensor acts = randomCodes(batch, c, 0xd1ce);
        BitSerialMatrix wp = BitSerialMatrix::pack(codes);
        Int32Tensor bsOut, refOut;
        double bsS = secondsOf(
            [&] {
                bsOut = gemmBitSerial(BitSerialMatrix::pack(acts), wp);
            },
            5);
        double refS = secondsOf(
            [&] { refOut = gemmReferenceBatch(acts, codes); }, 5);
        for (std::int64_t i = 0; i < refOut.numel(); ++i)
            if (bsOut.flat(i) != refOut.flat(i))
                BBS_PANIC("dense bit-serial GEMM mismatch at i=", i);
        std::cout << "\ndense gemmBitSerial vs naive reference at batch "
                  << batch << ": " << bench::times(refS / bsS) << "\n";
    }

    std::cout << (gatePassed
                      ? "\nGEMM speedup target (>= 4x at batch >= 64) met\n"
                      : "\nGEMM speedup BELOW the 4x target at batch >= "
                        "64!\n");

    // ---- Autotuned vs heuristic plan selection: measure this host's
    //      winners for the bench shape, deploy them into one Session,
    //      pin a second to the hand heuristic, and require the tuned
    //      plans to be bit-identical and never slower on geomean.
    {
        engine::AutotuneOptions topts;
        topts.reps = 3;
        topts.groupSize = groupSize;
        topts.targetColumns = targetColumns;
        std::vector<engine::TuneShape> shapes;
        for (std::int64_t batch : {1, 8, 64, 256})
            shapes.push_back({k, c, batch});
        engine::TuningCache cache = engine::autotuneShapes(shapes, topts);

        std::string cachePath =
            (std::filesystem::temp_directory_path() /
             "bbs_micro_gemm_tuning.json")
                .string();
        BBS_REQUIRE(cache.save(cachePath),
                    "cannot write the tuning cache to ", cachePath);

        engine::EngineConfig tunedCfg;
        tunedCfg.tuneCachePath = cachePath;
        engine::Session tuned(tunedCfg);
        BBS_REQUIRE(tuned.tuningCache() != nullptr,
                    "tuned Session failed to load ", cachePath);
        engine::EngineConfig heurCfg;
        heurCfg.tuneCachePath = "none"; // heuristic-only baseline
        engine::Session heuristic(heurCfg);

        engine::PackOptions popts;
        popts.groupSize = groupSize;
        popts.targetColumns = targetColumns;
        engine::PackedOperand wTuned = tuned.pack(codes, popts);
        engine::PackedOperand wHeur = heuristic.pack(codes, popts);

        struct TunedRow
        {
            std::int64_t batch = 0;
            double heurMmacs = 0.0;
            double tunedMmacs = 0.0;
            double ratio = 0.0;
        };
        struct TunedMeasured
        {
            std::vector<TunedRow> rows;
            double geomean = 0.0;
        };
        auto measureTuned = [&]() -> TunedMeasured {
            TunedMeasured m;
            double logSum = 0.0;
            for (std::int64_t batch : {1, 8, 64, 256}) {
                Int8Tensor acts = randomCodes(batch, c, 0x7e57 + batch);
                engine::ShapeHints hints;
                hints.expectedBatch = batch;
                engine::MatmulPlan planTuned = tuned.plan(wTuned, hints);
                engine::MatmulPlan planHeur =
                    heuristic.plan(wHeur, hints);
                Int32Tensor outTuned(Shape{batch, k});
                Int32Tensor outHeur(Shape{batch, k});
                double tunedS = secondsOf(
                    [&] { planTuned.run(acts, outTuned); }, 5);
                double heurS = secondsOf(
                    [&] { planHeur.run(acts, outHeur); }, 5);
                for (std::int64_t i = 0; i < outHeur.numel(); ++i)
                    if (outTuned.flat(i) != outHeur.flat(i))
                        BBS_PANIC("tuned/heuristic mismatch at batch ",
                                  batch, ", i=", i);
                const double macs = static_cast<double>(batch) *
                                    static_cast<double>(k) *
                                    static_cast<double>(c);
                TunedRow row;
                row.batch = batch;
                row.heurMmacs = macs / heurS / 1e6;
                row.tunedMmacs = macs / tunedS / 1e6;
                row.ratio = heurS / tunedS;
                logSum += std::log(row.ratio);
                m.rows.push_back(row);
            }
            m.geomean = std::exp(logSum / 4.0);
            return m;
        };

        // The gate compares two timing ratios on a shared machine;
        // retry a miss up to twice and keep the best attempt (the
        // micro_serve pattern) so one scheduler hiccup cannot fail CI.
        TunedMeasured m = measureTuned();
        for (int attempt = 1; attempt < 3 && m.geomean < 1.0; ++attempt) {
            TunedMeasured again = measureTuned();
            if (again.geomean > m.geomean)
                m = again;
        }

        Table tt({"batch", "heuristic plan", "tuned plan", "tuned/heur"});
        for (const TunedRow &row : m.rows) {
            const engine::TuneEntry *e = cache.lookup(
                k, c, row.batch, 8.0 - targetColumns,
                simdLevelName(activeSimdLevel()), maxWorkerThreads());
            tt.addRow({format("%lld", static_cast<long long>(row.batch)),
                       format("%.1f MMAC/s", row.heurMmacs),
                       format("%.1f MMAC/s (%s)", row.tunedMmacs,
                              e ? engine::planKindName(e->kind) : "?"),
                       bench::times(row.ratio)});
            bench::jsonAdd(
                "tuned-vs-heuristic",
                format("batch=%lld", static_cast<long long>(row.batch)),
                {{"heuristic_mmacs", row.heurMmacs},
                 {"tuned_mmacs", row.tunedMmacs},
                 {"ratio", row.ratio}});
        }
        std::cout << "\nautotuned vs heuristic plan selection "
                     "(bit-identical; cache: "
                  << cachePath << ")\n";
        tt.print(std::cout);
        std::cout << "tuned/heuristic geomean: "
                  << bench::times(m.geomean) << "\n";
        bench::jsonAdd("tuned-vs-heuristic", "geomean",
                       {{"geomean", m.geomean}});
        if (m.geomean < 1.0) {
            std::cout << "autotuned plans LOST to the heuristic on "
                         "geomean!\n";
            gatePassed = false;
        }
    }

    // ---- SIMD dispatch: the GEMM-side kernels at the active level vs
    //      the scalar table, on identical L1-resident data.
    {
        const SimdKernels &active = simdKernels();
        const SimdKernels &scalar = simdKernelsFor(SimdLevel::Scalar);
        const std::int64_t nw = 512; // one depth block: 4 KiB per stream
        Rng rng(0x51d);
        std::vector<std::uint64_t> a0(nw), a1(nw), w0(nw), w1(nw);
        for (auto *buf : {&a0, &a1, &w0, &w1})
            for (auto &w : *buf)
                w = rng.next();
        // Compressed groups: 6 stored planes (clean-planes invariant:
        // planes at and above `bits` stay zero) over 8-plane windows.
        const std::int64_t numGroups = 64;
        const int storedBits = 6;
        std::vector<std::uint64_t> gPlanes(
            static_cast<std::size_t>(numGroups * kWeightBits), 0);
        for (std::int64_t g = 0; g < numGroups; ++g)
            for (int b = 0; b < storedBits; ++b)
                gPlanes[static_cast<std::size_t>(g * kWeightBits + b)] =
                    rng.next() & rng.next(); // pruning-style sparsity
        std::vector<std::uint64_t> windows(
            static_cast<std::size_t>(numGroups * kWeightBits));
        for (auto &w : windows)
            w = rng.next();
        // `gated` rows are the stream kernels whose throughput the
        // tentpole targets: they enter the geomean gate. Window/group
        // kernels (one 8-word window per logical op) are horizontal-
        // reduce-bound — reported, checked bit-identical, and held to
        // bench_common's no-pessimization floor instead.
        bench::SimdDispatchBench simdBench;
        auto simdRow = [&](const char *name, bool gated, auto scalarFn,
                           auto activeFn, double wordsPerCall) {
            simdBench.row(name, gated, scalarFn, activeFn, wordsPerCall);
        };

        if (active.andPopcountTile != scalar.andPopcountTile)
            simdRow(
                "andPopcountTile", true,
                [&] {
                    std::int64_t p[4];
                    scalar.andPopcountTile(a0.data(), a1.data(), w0.data(),
                                           w1.data(), nw, p);
                    return p[0] + p[1] + p[2] + p[3];
                },
                [&] {
                    std::int64_t p[4];
                    active.andPopcountTile(a0.data(), a1.data(), w0.data(),
                                           w1.data(), nw, p);
                    return p[0] + p[1] + p[2] + p[3];
                },
                static_cast<double>(4 * nw));
        if (active.andPopcountAccumulate != scalar.andPopcountAccumulate)
            simdRow(
                "andPopcountAccumulate", true,
                [&] {
                    return scalar.andPopcountAccumulate(a0.data(),
                                                        w0.data(), nw);
                },
                [&] {
                    return active.andPopcountAccumulate(a0.data(),
                                                        w0.data(), nw);
                },
                static_cast<double>(nw));
        if (active.compressedGroupDot != scalar.compressedGroupDot)
            simdRow(
                "compressedGroupDot", false,
                [&] {
                    std::int64_t s = 0;
                    for (std::int64_t g = 0; g < numGroups; ++g)
                        s += scalar.compressedGroupDot(
                            gPlanes.data() + g * kWeightBits, storedBits,
                            windows.data() + g * kWeightBits);
                    return s;
                },
                [&] {
                    std::int64_t s = 0;
                    for (std::int64_t g = 0; g < numGroups; ++g)
                        s += active.compressedGroupDot(
                            gPlanes.data() + g * kWeightBits, storedBits,
                            windows.data() + g * kWeightBits);
                    return s;
                },
                static_cast<double>(numGroups * kWeightBits));
        if (active.weightedPlaneSumBatch != scalar.weightedPlaneSumBatch)
            simdRow(
                "weightedPlaneSumBatch", false,
                [&] {
                    std::int64_t sums[64];
                    scalar.weightedPlaneSumBatch(windows.data(),
                                                 numGroups, sums);
                    return sums[0] + sums[numGroups - 1];
                },
                [&] {
                    std::int64_t sums[64];
                    active.weightedPlaneSumBatch(windows.data(),
                                                 numGroups, sums);
                    return sums[0] + sums[numGroups - 1];
                },
                static_cast<double>(numGroups * kWeightBits));

        gatePassed =
            simdBench.finish(
                std::cout,
                format("SIMD dispatch (%s vs scalar, %lld-word streams)",
                       simdLevelName(active.level),
                       static_cast<long long>(nw))) &&
            gatePassed;

        // End-to-end: both GEMMs under scalar dispatch vs the active
        // level, outputs pinned bit-identical.
        if (active.level != SimdLevel::Scalar) {
            const std::int64_t batch = 64;
            Int8Tensor acts = randomCodes(batch, c, 0xe2e);
            BitSerialMatrix ap = BitSerialMatrix::pack(acts);
            BitSerialMatrix wp = BitSerialMatrix::pack(codes);
            Int32Tensor denseActive, denseScalar;
            Int32Tensor compActive, compScalar;
            double denseActiveS = secondsOf(
                [&] { denseActive = gemmBitSerial(ap, wp); }, 5);
            double compActiveS = secondsOf(
                [&] { compActive = gemmCompressed(planes, ap); }, 5);
            setSimdLevel(SimdLevel::Scalar);
            double denseScalarS = secondsOf(
                [&] { denseScalar = gemmBitSerial(ap, wp); }, 5);
            double compScalarS = secondsOf(
                [&] { compScalar = gemmCompressed(planes, ap); }, 5);
            setSimdLevel(active.level);
            for (std::int64_t i = 0; i < denseActive.numel(); ++i)
                if (denseActive.flat(i) != denseScalar.flat(i))
                    BBS_PANIC("gemmBitSerial dispatch mismatch at i=", i);
            for (std::int64_t i = 0; i < compActive.numel(); ++i)
                if (compActive.flat(i) != compScalar.flat(i))
                    BBS_PANIC("gemmCompressed dispatch mismatch at i=", i);
            const double macs = static_cast<double>(batch) *
                                static_cast<double>(k) *
                                static_cast<double>(c);
            std::cout << "\nend-to-end at batch 64 (bit-identical): "
                      << "gemmBitSerial "
                      << bench::times(denseScalarS / denseActiveS)
                      << ", gemmCompressed "
                      << bench::times(compScalarS / compActiveS)
                      << " over scalar dispatch\n";
            bench::jsonAdd("gemmBitSerial", "dispatch-vs-scalar",
                           {{"scalar_mmacs", macs / denseScalarS / 1e6},
                            {"dispatched_mmacs", macs / denseActiveS / 1e6},
                            {"speedup", denseScalarS / denseActiveS}});
            bench::jsonAdd("gemmCompressed", "dispatch-vs-scalar",
                           {{"scalar_mmacs", macs / compScalarS / 1e6},
                            {"dispatched_mmacs", macs / compActiveS / 1e6},
                            {"speedup", compScalarS / compActiveS}});
        }
    }

    bench::jsonFlush();
    return gatePassed ? 0 : 1;
}
