/**
 * @file
 * Serving throughput vs. offered concurrency: the dynamic micro-batching
 * runtime against the per-request baseline.
 *
 * For each client count M in {1, 8, 64, 256}, M closed-loop client
 * threads issue single-sample requests (a fixed total across all
 * clients) two ways:
 *
 *  - per-request: each client executes its own sample directly through
 *    Int8Network::forwardPerDot() — the pre-serving deployment shape,
 *    one compressed-dot pass per request, request-level parallelism
 *    only (the worker cap is pinned to 1 during this phase so a naive
 *    per-request server's intra-op behaviour is modeled, not an
 *    oversubscribed thread explosion);
 *  - batched runtime: clients submit to the InferenceServer, whose
 *    batcher coalesces up to maxBatch requests into one
 *    BitSerialMatrix pack + gemmCompressed call (full intra-GEMM
 *    parallelism).
 *
 * Every server response is checked bit-identical to the per-request
 * oracle. The run exits non-zero unless the batching runtime reaches
 * >= 3x the per-request throughput at every M >= 64 AND >= 0.9x at one
 * client (the CI Release gates) — the single-client bound holds because
 * the batcher's all-aboard flush never waits when every live request is
 * already aboard, and a flushed batch of one runs the per-dot fast path
 * instead of staging a GEMM.
 *
 * A final section proves the zero-allocation steady state: after a few
 * warm-up batches grow every per-thread buffer to its high-water mark,
 * the whole drain path (batch formation -> gather -> forwardInto ->
 * response completion) is re-run under the counting allocator
 * (common/alloc_count.hpp) and must perform exactly 0 heap allocations
 * per request at every batch size — also a CI gate.
 */
#include <chrono>
#include <iostream>
#include <thread>

#include "bench/bench_common.hpp"
#include "common/alloc_count.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "nn/layers.hpp"
#include "serve/server.hpp"

namespace {

using namespace bbs;

constexpr std::int64_t kInputDim = 512;
constexpr std::int64_t kHidden = 256;
constexpr std::int64_t kClasses = 64;
constexpr std::int64_t kTotalRequests = 1024;
constexpr std::size_t kPoolSize = 64;

std::vector<std::vector<float>>
makePool(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> pool(kPoolSize);
    for (auto &sample : pool) {
        sample.resize(static_cast<std::size_t>(kInputDim));
        for (float &v : sample)
            v = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    }
    return pool;
}

double
wallSecondsOf(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::jsonInit("micro_serve", argc, argv);
    bench::printHeader(
        "micro_serve",
        "the micro-batching serving runtime reaches >= 3x the "
        "per-request forwardPerDot throughput at >= 64 concurrent "
        "clients, and >= 0.9x at a single client");

    Rng wrng(0xbeef);
    Network net;
    net.add(std::make_unique<Dense>(kInputDim, kHidden, wrng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(kHidden, kClasses, wrng));
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("clf", Int8Network::fromNetwork(
                             net, 32, 4, PruneStrategy::ZeroPointShifting));
    std::shared_ptr<const Int8Network> engine = registry->find("clf");

    auto pool = makePool(0xf00d);
    // Per-sample oracle (also the correctness pin for every response).
    std::vector<std::vector<float>> oracle(kPoolSize);
    for (std::size_t i = 0; i < kPoolSize; ++i) {
        Batch x(Shape{1, kInputDim});
        for (std::int64_t c = 0; c < kInputDim; ++c)
            x.at(0, c) = pool[i][static_cast<std::size_t>(c)];
        Batch y = engine->forwardPerDot(x);
        oracle[i].resize(static_cast<std::size_t>(kClasses));
        for (std::int64_t c = 0; c < kClasses; ++c)
            oracle[i][static_cast<std::size_t>(c)] = y.at(0, c);
    }

    Table table({"clients", "per-request", "batched runtime", "speedup",
                 "p50", "p99", "mean batch"});
    bool gatePassed = true;

    struct Measured
    {
        double baseRps = 0.0;
        double serveRps = 0.0;
        double speedup = 0.0;
        StatsSnapshot s;
    };

    auto measureOnce = [&](int clients) -> Measured {
        const std::int64_t perClient = kTotalRequests / clients;
        const std::int64_t total =
            perClient * static_cast<std::int64_t>(clients);

        // ---- per-request baseline: forwardPerDot per sample, request-
        // level concurrency only.
        setWorkerThreadCap(1);
        double baseS = wallSecondsOf([&] {
            std::vector<std::thread> threads;
            for (int t = 0; t < clients; ++t) {
                threads.emplace_back([&, t] {
                    for (std::int64_t i = 0; i < perClient; ++i) {
                        std::size_t idx = static_cast<std::size_t>(
                            (static_cast<std::int64_t>(t) * perClient +
                             i) %
                            kPoolSize);
                        Batch x(Shape{1, kInputDim});
                        for (std::int64_t c = 0; c < kInputDim; ++c)
                            x.at(0, c) =
                                pool[idx][static_cast<std::size_t>(c)];
                        Batch y = engine->forwardPerDot(x);
                        if (y.at(0, 0) != oracle[idx][0])
                            BBS_PANIC("baseline mismatch");
                    }
                });
            }
            for (auto &th : threads)
                th.join();
        });
        setWorkerThreadCap(0);

        // ---- batched runtime: same offered load through the server.
        ServerConfig cfg;
        cfg.maxBatch = 64;
        cfg.maxDelayUs = 1000;
        cfg.workers = 1;
        InferenceServer server(registry, cfg);
        std::atomic<std::int64_t> mismatches{0};
        double serveS = wallSecondsOf([&] {
            std::vector<std::thread> threads;
            for (int t = 0; t < clients; ++t) {
                threads.emplace_back([&, t] {
                    for (std::int64_t i = 0; i < perClient; ++i) {
                        std::size_t idx = static_cast<std::size_t>(
                            (static_cast<std::int64_t>(t) * perClient +
                             i) %
                            kPoolSize);
                        InferenceResponse resp =
                            server.submit("clf", pool[idx]).get();
                        if (resp.status != ServeStatus::Ok ||
                            resp.logits != oracle[idx])
                            mismatches.fetch_add(1);
                    }
                });
            }
            for (auto &th : threads)
                th.join();
        });
        Measured m;
        m.s = server.stats();
        server.stop();
        if (mismatches.load() != 0)
            BBS_PANIC(mismatches.load(),
                      " responses deviated from the per-request oracle "
                      "at clients=", clients);
        m.baseRps = static_cast<double>(total) / baseS;
        m.serveRps = static_cast<double>(total) / serveS;
        m.speedup = m.serveRps / m.baseRps;
        return m;
    };

    for (int clients : {1, 8, 64, 256}) {
        // Gates: >= 3x at high concurrency, >= 0.9x for the lone client
        // (the all-aboard flush + per-dot fast path). Both are timing
        // ratios on a shared machine — retry a missed gate up to twice
        // and keep the best attempt before failing, so one scheduler
        // hiccup cannot fail Release CI.
        double gateMin =
            clients == 1 ? 0.9 : (clients >= 64 ? 3.0 : 0.0);
        Measured m = measureOnce(clients);
        for (int attempt = 1;
             attempt < 3 && gateMin > 0.0 && m.speedup < gateMin;
             ++attempt) {
            Measured again = measureOnce(clients);
            if (again.speedup > m.speedup)
                m = again;
        }
        if (gateMin > 0.0 && m.speedup < gateMin)
            gatePassed = false;
        bench::jsonAdd("serve", format("clients=%d", clients),
                       {{"per_request_rps", m.baseRps},
                        {"batched_rps", m.serveRps},
                        {"speedup", m.speedup},
                        {"p50_us", static_cast<double>(m.s.p50Us)},
                        {"p99_us", static_cast<double>(m.s.p99Us)},
                        {"mean_batch", m.s.meanBatchRows}});
        table.addRow(
            {format("%d", clients), format("%.0f req/s", m.baseRps),
             format("%.0f req/s", m.serveRps), bench::times(m.speedup),
             format("%.2f ms", m.s.p50Us / 1e3),
             format("%.2f ms", m.s.p99Us / 1e3),
             format("%.1f", m.s.meanBatchRows)});
    }
    table.print(std::cout);

    std::cout << (gatePassed
                      ? "\nserving speedup targets (>= 3x at >= 64 "
                        "clients, >= 0.9x at 1 client) met\n"
                      : "\nserving speedup BELOW target (>= 3x at >= 64 "
                        "clients, >= 0.9x at 1 client)!\n");

    // ---- Zero-allocation steady state: drive the drain path on this
    //      thread (workers = 0 — the counting is exact, and the GEMM's
    //      pool threads are covered by the process-wide counter), warm
    //      the per-thread buffers to their high-water mark, then demand
    //      ZERO heap allocations per request at every batch size.
    {
        ServerConfig cfg;
        cfg.maxBatch = 64;
        cfg.maxDelayUs = 0; // serve whatever is queued right now
        cfg.workers = 0;    // drained below, on the measuring thread
        InferenceServer server(registry, cfg);

        auto submitRound = [&](std::int64_t rows) {
            std::vector<std::future<InferenceResponse>> futs;
            futs.reserve(static_cast<std::size_t>(rows));
            for (std::int64_t i = 0; i < rows; ++i)
                futs.push_back(server.submit(
                    "clf", pool[static_cast<std::size_t>(i) % kPoolSize]));
            return futs;
        };
        auto checkRound =
            [&](std::vector<std::future<InferenceResponse>> &futs) {
                for (std::size_t i = 0; i < futs.size(); ++i) {
                    InferenceResponse resp = futs[i].get();
                    if (resp.status != ServeStatus::Ok ||
                        resp.logits != oracle[i % kPoolSize])
                        BBS_PANIC("steady-state response deviated from "
                                  "the oracle at i=", i);
                }
            };

        // Warm-up: the first batches grow the thread-local batch vector,
        // forward scratch, and GEMM arenas to maxBatch high water.
        for (int round = 0; round < 3; ++round) {
            auto futs = submitRound(cfg.maxBatch);
            for (std::int64_t served = 0; served < cfg.maxBatch;)
                served += server.drainOnce();
            checkRound(futs);
        }

        Table at({"batch rows", "requests", "allocs/request"});
        bool allocFree = true;
        for (std::int64_t rows : {std::int64_t{1}, std::int64_t{8},
                                  std::int64_t{64}}) {
            auto futs = submitRound(rows);
            bool wasCounting = allocCountingEnabled();
            setAllocCounting(true);
            std::uint64_t p0 = processAllocCount();
            for (std::int64_t served = 0; served < rows;)
                served += server.drainOnce();
            std::uint64_t allocs = processAllocCount() - p0;
            setAllocCounting(wasCounting);
            checkRound(futs);

            double perReq = static_cast<double>(allocs) /
                            static_cast<double>(rows);
            if (allocs != 0)
                allocFree = false;
            at.addRow({format("%lld", static_cast<long long>(rows)),
                       format("%lld", static_cast<long long>(rows)),
                       format("%.2f", perReq)});
            bench::jsonAdd("serve-steady-state-allocs",
                           format("rows=%lld",
                                  static_cast<long long>(rows)),
                           {{"allocs_per_request", perReq}});
        }
        std::cout << "\nsteady-state drain-path heap allocations "
                     "(counting operator new, process-wide)\n";
        at.print(std::cout);
        if (!allocFree) {
            std::cout << "steady-state serving ALLOCATED on the hot "
                         "path (expected 0 allocs/request)!\n";
            gatePassed = false;
        } else {
            std::cout << "steady-state serving is allocation-free\n";
        }
    }

    bench::jsonFlush();
    return gatePassed ? 0 : 1;
}
