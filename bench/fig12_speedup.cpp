/**
 * @file
 * Figure 12: end-to-end speedup of all eight accelerators across the seven
 * DNN benchmarks, normalized to Stripes, plus the geometric mean.
 * Paper headline: BitVert 2.48x (cons) and 3.03x (mod) geomean.
 */
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Figure 12 — speedup normalized to Stripes",
                "BitVert provides the highest speedup on every benchmark "
                "(paper geomean: cons 2.48x, mod 3.03x).");

    std::vector<std::string> accNames;
    for (auto &a : evaluationLineup())
        accNames.push_back(a->name());

    std::vector<std::string> header = {"Model"};
    for (const auto &n : accNames)
        header.push_back(n);
    Table t(header);

    std::map<std::string, std::vector<double>> speedups;
    SimConfig cfg;
    for (const auto &desc : benchmarkModels()) {
        auto sims = simulateLineup(desc.name, cfg);
        double stripes = sims.at("Stripes").totalCycles();
        std::vector<std::string> row = {desc.name};
        for (const auto &n : accNames) {
            double s = stripes / sims.at(n).totalCycles();
            speedups[n].push_back(s);
            row.push_back(times(s));
        }
        t.addRow(row);
    }

    std::vector<std::string> geo = {"Geomean"};
    for (const auto &n : accNames)
        geo.push_back(times(geomean(speedups[n])));
    t.addRow(geo);
    t.print(std::cout);

    std::cout << "\nPaper reference geomeans: SparTen ~1.49x, ANT ~1.52x, "
                 "Stripes 1.0x, Pragmatic ~1.20x, Bitlet ~1.33x, BitWave "
                 "~1.83x, BitVert 2.48x (cons) / 3.03x (mod).\n";
    return 0;
}
