/**
 * @file
 * Model-store load path: mmap-backed BBMS container vs cold BOP1
 * deserialization, at the scale of the largest transformer benchmark's
 * MLP stack (BERT-base FFN blocks: 768<->3072, ~9.5M weights).
 *
 * Three claims, all CI gates in Release:
 *
 *  1. SPEED: loading the model from its container (open + validate +
 *     map + per-layer plan creation) is >= 20x faster than rebuilding
 *     it from BOP1 operand images (PackedOperand::deserialize repacks
 *     every plane; the container's payload IS the in-memory layout, so
 *     mapping replaces decode with page faults).
 *  2. FIRST-TOUCH BIT-IDENTITY: the mapped network's very first forward
 *     pass — activations faulting the weight pages in on demand — is
 *     bit-identical to the owned network it was packed from.
 *  3. SHARED PAGES: a second process opening the same container shares
 *     physical pages with this one. Verified via /proc/self/smaps
 *     proportional-set-size accounting: with two mappers, the
 *     container mapping's Pss must drop well below its Rss (each
 *     shared page charges 1/2 to each process). Skipped (without
 *     failing) when /proc is unavailable.
 *
 * `--json FILE` lands the measurements next to the other BENCH_*.json
 * artifacts.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_common.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "engine/engine.hpp"
#include "nn/int8_infer.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "store/container.hpp"
#include "store/model_store.hpp"

namespace {

using namespace bbs;

constexpr double kLoadSpeedupGate = 20.0;
constexpr double kPssShareGate = 0.75; // two mappers: expect ~0.5

double
wallSecondsOf(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** BERT-base-shaped MLP stack: two FFN blocks plus a classifier head —
 *  the largest dense shapes in the model zoo's transformer lineup. */
Int8Network
buildStoreBenchModel()
{
    Rng rng(0xb0b5);
    Network net;
    net.add(std::make_unique<Dense>(768, 3072, rng));
    net.add(std::make_unique<GeluLayer>());
    net.add(std::make_unique<Dense>(3072, 768, rng));
    net.add(std::make_unique<Dense>(768, 3072, rng));
    net.add(std::make_unique<GeluLayer>());
    net.add(std::make_unique<Dense>(3072, 768, rng));
    net.add(std::make_unique<Dense>(768, 128, rng));
    // targetColumns 4: the standard operating point; also keeps mapped
    // plan creation from staging a dense repack, like serving configs.
    return Int8Network::fromNetwork(net, 32, 4,
                                    PruneStrategy::ZeroPointShifting);
}

Batch
randomBatch(std::int64_t n, std::int64_t features, std::uint64_t seed)
{
    Rng rng(seed);
    Batch x(Shape{n, features});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.flat(i) = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    return x;
}

/** Rss/Pss (bytes) of every smaps mapping whose pathname is @p path. */
bool
smapsForPath(const std::string &path, std::uint64_t &rssBytes,
             std::uint64_t &pssBytes)
{
    std::ifstream smaps("/proc/self/smaps");
    if (!smaps.good())
        return false;
    rssBytes = pssBytes = 0;
    bool inMapping = false, sawMapping = false;
    std::string line;
    while (std::getline(smaps, line)) {
        if (line.find('-') != std::string::npos &&
            line.find(' ') != std::string::npos &&
            line.find("kB") == std::string::npos) {
            // Range header line: "start-end perms off dev inode path".
            inMapping = line.size() >= path.size() &&
                        line.compare(line.size() - path.size(),
                                     path.size(), path) == 0;
            sawMapping |= inMapping;
            continue;
        }
        if (!inMapping)
            continue;
        std::uint64_t kb = 0;
        if (std::sscanf(line.c_str(), "Rss: %lu kB",
                        reinterpret_cast<unsigned long *>(&kb)) == 1)
            rssBytes += kb << 10;
        else if (std::sscanf(line.c_str(), "Pss: %lu kB",
                             reinterpret_cast<unsigned long *>(&kb)) == 1)
            pssBytes += kb << 10;
    }
    return sawMapping;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader(
        "micro_store: mmap model container vs BOP1 deserialize",
        "mapping a BBMS container is the in-memory layout + page "
        "faults; rebuilding from BOP1 repacks every plane");
    bench::jsonInit("micro_store", argc, argv);

    std::cout << "packing the benchmark model (BERT-base FFN shapes)...\n";
    Int8Network owned = buildStoreBenchModel();

    std::string path = "/tmp/bbs_micro_store_" +
                       std::to_string(::getpid()) + ".bbms";
    std::size_t containerBytes = store::writeModelContainer(owned, path);

    // BOP1 baseline images: one serialized operand per layer, packed
    // from the same (compressed-domain) weights the container holds.
    std::vector<std::vector<std::uint8_t>> blobs;
    std::size_t blobBytes = 0;
    for (const auto &layer : owned.layers()) {
        engine::PackedOperand op = engine::defaultSession().pack(
            layer.planes->decompress(),
            engine::PackOptions{layer.groupSize, 4,
                                PruneStrategy::ZeroPointShifting});
        blobs.push_back(op.serialize());
        blobBytes += blobs.back().size();
    }

    // ---- load timing: best of a few reps each, both paths warm in
    //      memory (blobs in RAM, container in page cache) — the delta
    //      measured is decode work, which is the point.
    constexpr int kReps = 5;
    double deserS = 1e30, mapS = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
        deserS = std::min(deserS, wallSecondsOf([&] {
            for (const auto &blob : blobs) {
                engine::PackedOperand op =
                    engine::PackedOperand::deserialize(blob);
                engine::MatmulPlan plan =
                    engine::defaultSession().plan(op);
                BBS_REQUIRE(plan.valid(), "baseline plan invalid");
            }
        }));
        mapS = std::min(mapS, wallSecondsOf([&] {
            auto container = store::MappedContainer::open(path);
            Int8Network mapped = store::mapModel(container);
            BBS_REQUIRE(mapped.layers().size() == owned.layers().size(),
                        "mapped layer count mismatch");
        }));
    }
    double speedup = deserS / mapS;

    // ---- first-touch bit-identity: a FRESH mapping's first forward.
    bool identical = true;
    {
        auto container = store::MappedContainer::open(path);
        Int8Network mapped = store::mapModel(container);
        Batch x = randomBatch(4, owned.inputFeatures(), 0x717e);
        Batch want = owned.forward(x);
        Batch got = mapped.forward(x);
        for (std::int64_t i = 0; i < want.numel(); ++i)
            if (want.flat(i) != got.flat(i)) {
                identical = false;
                break;
            }
    }

    // ---- two-process page sharing via smaps Pss. The parent keeps
    //      its mapping faulted in; the child maps the same file and
    //      holds it across the parent's smaps read.
    bool shareChecked = false, sharePassed = true;
    double pssOverRss = 0.0;
    auto parentContainer = store::MappedContainer::open(path);
    parentContainer->adviseWillNeed();
    Int8Network parentMapped = store::mapModel(parentContainer);
    (void)parentMapped.forward(
        randomBatch(1, parentMapped.inputFeatures(), 1));

    std::uint64_t rssSolo = 0, pssSolo = 0;
    if (smapsForPath(path, rssSolo, pssSolo) && rssSolo > 0) {
        int toChild[2], toParent[2];
        if (::pipe(toChild) == 0 && ::pipe(toParent) == 0) {
            pid_t pid = ::fork();
            if (pid == 0) {
                // Child: independent mapping of the same container
                // (validation faults the payload in), then hold it
                // until the parent has read smaps.
                ::close(toChild[1]);
                ::close(toParent[0]);
                std::shared_ptr<const store::MappedContainer> c;
                char byte = store::MappedContainer::tryOpen(path, c)
                                ? '1'
                                : '0';
                (void)!::write(toParent[1], &byte, 1);
                (void)!::read(toChild[0], &byte, 1);
                ::_exit(0);
            }
            ::close(toChild[0]);
            ::close(toParent[1]);
            char byte = '0';
            if (::read(toParent[0], &byte, 1) == 1 && byte == '1') {
                std::uint64_t rss = 0, pss = 0;
                if (smapsForPath(path, rss, pss) && rss > 0) {
                    shareChecked = true;
                    pssOverRss = static_cast<double>(pss) /
                                 static_cast<double>(rss);
                    sharePassed = pssOverRss <= kPssShareGate;
                }
            }
            (void)!::write(toChild[1], &byte, 1);
            ::close(toChild[1]);
            ::close(toParent[0]);
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }

    Table table({"metric", "value"});
    table.addRow({"container bytes",
                  format("%.1f MiB", containerBytes / 1048576.0)});
    table.addRow({"BOP1 image bytes",
                  format("%.1f MiB", blobBytes / 1048576.0)});
    table.addRow({"deserialize load", format("%.1f ms", deserS * 1e3)});
    table.addRow({"mapped load", format("%.2f ms", mapS * 1e3)});
    table.addRow({"speedup", bench::times(speedup)});
    table.addRow({"first-touch bit-identity", identical ? "yes" : "NO"});
    table.addRow({"two-process Pss/Rss",
                  shareChecked ? format("%.2f", pssOverRss)
                               : "skipped (/proc unavailable)"});
    table.print(std::cout);

    bench::jsonAdd("store-load", "bert_ffn_stack",
                   {{"container_mib", containerBytes / 1048576.0},
                    {"bop1_mib", blobBytes / 1048576.0},
                    {"deserialize_ms", deserS * 1e3},
                    {"mapped_ms", mapS * 1e3},
                    {"speedup", speedup},
                    {"bit_identical", identical ? 1.0 : 0.0},
                    {"pss_over_rss", shareChecked ? pssOverRss : -1.0}});
    bench::jsonFlush();

    bool gatePassed = true;
    if (!identical) {
        std::cout << "\nmapped inference DIVERGED from the owned "
                     "network!\n";
        gatePassed = false;
    }
    if (speedup < kLoadSpeedupGate) {
        std::cout << format("\nmapped load speedup %.1fx BELOW the "
                            "%.0fx gate!\n",
                            speedup, kLoadSpeedupGate);
        gatePassed = false;
    }
    if (shareChecked && !sharePassed) {
        std::cout << format("\ntwo-process Pss/Rss %.2f above %.2f: "
                            "pages are NOT being shared!\n",
                            pssOverRss, kPssShareGate);
        gatePassed = false;
    }
    if (gatePassed)
        std::cout << format("\nstore gates met (>= %.0fx load speedup, "
                            "bit-identical first touch%s)\n",
                            kLoadSpeedupGate,
                            shareChecked ? ", shared pages" : "");

    std::remove(path.c_str());
    return gatePassed ? 0 : 1;
}
