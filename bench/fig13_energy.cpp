/**
 * @file
 * Figure 13: energy breakdown (off-chip memory vs on-chip compute) of all
 * eight accelerators across the seven benchmarks, normalized to SparTen.
 * Paper headline: BitVert (mod) at 0.41x of SparTen's energy (2.44x
 * saving).
 */
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Figure 13 — energy breakdown normalized to SparTen",
                "BitVert consumes the least energy; SparTen the most "
                "(paper: BitVert mod = 0.41x SparTen).");

    std::vector<std::string> accNames;
    for (auto &a : evaluationLineup())
        accNames.push_back(a->name());

    Table t({"Model", "Accelerator", "Off-chip", "On-chip", "Total"});
    std::map<std::string, std::vector<double>> totals;
    SimConfig cfg;
    for (const auto &desc : benchmarkModels()) {
        auto sims = simulateLineup(desc.name, cfg);
        double sparten = sims.at("SparTen").totalEnergyPj();
        for (const auto &n : accNames) {
            const ModelSim &ms = sims.at(n);
            double off = ms.offChipEnergyPj() / sparten;
            double on = ms.onChipEnergyPj() / sparten;
            totals[n].push_back(off + on);
            t.addRow({desc.name, n, formatDouble(off, 3),
                      formatDouble(on, 3), formatDouble(off + on, 3)});
        }
    }
    t.print(std::cout);

    Table g({"Accelerator", "Geomean norm. energy"});
    for (const auto &n : accNames)
        g.addRow({n, formatDouble(geomean(totals[n]), 3)});
    std::cout << '\n';
    g.print(std::cout);

    std::cout << "\nPaper reference geomeans (norm. to SparTen): ANT 0.45x,"
                 " Stripes 0.57x, Pragmatic 0.59x, Bitlet 0.63x, BitWave "
                 "0.52x, BitVert 0.47x (cons) / 0.41x (mod).\n";
    return 0;
}
