/**
 * @file
 * Figure 3: inherent weight value sparsity, bit sparsity (2's complement),
 * bit sparsity (sign-magnitude), and BBS (bit-vector size 8) across six
 * INT8 DNNs. Paper shape: value < 0.05; 2's comp ~0.5; sign-mag higher;
 * BBS highest and always >= 0.5.
 */
#include <iostream>

#include "bench_common.hpp"
#include "core/bbs.hpp"
#include "tensor/distribution.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Figure 3 — inherent sparsity of INT8 DNN weights",
                "BBS guarantees >= 50% sparsity and exceeds both value and "
                "zero-bit sparsity.");

    const char *models[] = {"VGG-16",    "ResNet-34", "ResNet-50",
                            "ViT-Small", "ViT-Base",  "Bert-MRPC"};

    Table t({"Model", "Value", "Bit (2's Comp)", "Bit (Sign Mag)",
             "BBS (2's Comp)"});
    for (const char *name : models) {
        const MaterializedModel &mm = cachedModel(name);
        double value = 0.0, twos = 0.0, sm = 0.0, bbsv = 0.0, n = 0.0;
        for (const auto &l : mm.layers) {
            const Int8Tensor &codes = l.weights.values;
            double w = static_cast<double>(codes.numel()) * l.desc.repeat;
            value += valueSparsity(codes) * w;
            twos += bitSparsityTwosComplement(codes) * w;
            sm += bitSparsitySignMagnitude(codes) * w;
            bbsv += bbsSparsity(codes, 8) * w;
            n += w;
        }
        t.addRow({name, formatDouble(value / n, 3),
                  formatDouble(twos / n, 3), formatDouble(sm / n, 3),
                  formatDouble(bbsv / n, 3)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference shape: value < 0.05 everywhere; "
                 "BBS > bit(2's comp) and BBS >= 0.5 for all models.\n";
    return 0;
}
