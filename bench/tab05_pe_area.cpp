/**
 * @file
 * Table V: PE area and power of BitVert vs prior bit-serial accelerators,
 * all with 8 bit-serial multipliers at 800 MHz, 28 nm.
 */
#include <iostream>

#include "bench_common.hpp"
#include "hw/pe_model.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Table V — PE area/power of bit-serial accelerators",
                "BitVert adds only ~1.4x area over dense Stripes while "
                "enabling balanced BBS skipping; Bitlet's crossbar muxes "
                "make it ~3x.");

    double stripesArea = stripesPe().totalArea();
    Table t({"Accelerator", "Multiplier (um^2)", "Others (um^2)",
             "Total (um^2)", "Ratio", "Power (mW)"});
    for (const PeCost &pe :
         {stripesPe(), pragmaticPe(), bitletPe(), bitwavePe(),
          bitvertPe()}) {
        t.addRow({pe.name, formatDouble(pe.multiplierArea, 1),
                  formatDouble(pe.othersArea, 1),
                  formatDouble(pe.totalArea(), 1),
                  times(pe.totalArea() / stripesArea),
                  formatDouble(pe.powerMw, 2)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference ratios over Stripes: Pragmatic 1.73x, "
                 "Bitlet 3.13x, BitWave 1.32x, BitVert 1.39x; BitVert "
                 "power 0.45 mW below BitWave's 0.49 mW.\n";
    return 0;
}
