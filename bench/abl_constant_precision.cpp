/**
 * @file
 * Ablation: BBS-constant precision. §III-B argues 6 bits is the right
 * metadata budget for the zero-point constant: fewer bits shrink the
 * Algorithm-1 search space and raise MSE; more would be wasted (pruning 7+
 * columns is useless anyway). This sweep quantifies that.
 */
#include <iostream>

#include "bench_common.hpp"
#include "core/group_compressor.hpp"
#include "common/random.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader(
        "Ablation — zero-point constant precision (group 32, 4 columns)",
        "MSE falls monotonically with search-space precision and "
        "saturates at the paper's 6-bit choice.");

    const MaterializedModel &mm = cachedModel("ViT-Base", 300000);
    const Int8Tensor &codes = mm.layers[1].weights.values;
    std::int64_t groups = std::min<std::int64_t>(
        codes.numGroups(32), 4000);

    Table t({"Constant bits", "Search candidates", "Mean group MSE"});
    double prev = 1e300;
    for (int bits : {2, 3, 4, 5, 6}) {
        double sse = 0.0;
        for (std::int64_t g = 0; g < groups; ++g) {
            auto grp = codes.group(g, 32);
            CompressedGroup cg =
                compressGroupZeroPointShifting(grp, 4, bits);
            sse += groupSse(grp, cg) / static_cast<double>(grp.size());
        }
        double meanMse = sse / static_cast<double>(groups);
        t.addRow({std::to_string(bits), std::to_string(1 << bits),
                  formatDouble(meanMse, 4)});
        if (meanMse > prev + 1e-9)
            std::cout << "WARNING: MSE increased with more precision!\n";
        prev = meanMse;
    }
    t.print(std::cout);
    return 0;
}
