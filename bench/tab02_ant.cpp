/**
 * @file
 * Table II: BBS moderate binary pruning vs 6-bit ANT (no fine-tuning) on
 * VGG-16 and ResNet-50 — accuracy loss and effective weight bit width.
 */
#include <iostream>

#include "bench_common.hpp"

using namespace bbs;
using namespace bbs::bench;

int
main()
{
    printHeader("Table II — BBS (mod) vs ANT 6-bit without fine-tuning",
                "BBS achieves lower accuracy loss at fewer effective bits "
                "(paper: 0.2%@4.32b vs 0.68%@6b on VGG-16).");

    Table t({"Model", "Method", "dAcc (%)", "Eff. bits", "Weight KL"});
    for (const char *name : {"VGG-16", "ResNet-50"}) {
        StandIn &si = standInFor(name);
        double base = si.int8Accuracy;

        CompressionSpec bbs;
        bbs.method = CompressionMethod::BbsPrune;
        bbs.bbs = moderateConfig();
        CompressionReport bbsRep;
        double bbsAcc = accuracyAfter(name, bbs, &bbsRep);

        CompressionSpec ant;
        ant.method = CompressionMethod::AntAdaptive;
        ant.bits = 6;
        CompressionReport antRep;
        double antAcc = accuracyAfter(name, ant, &antRep);

        t.addRow({name, "BBS (mod)", deltaPct(bbsAcc - base),
                  formatDouble(bbsRep.effectiveBits, 2),
                  format("%.2e", bbsRep.weightKl)});
        t.addRow({name, "ANT (6-bit)", deltaPct(antAcc - base),
                  formatDouble(antRep.effectiveBits, 2),
                  format("%.2e", antRep.weightKl)});
    }
    t.print(std::cout);
    std::cout << "\nPaper reference: BBS (mod) 0.2%/4.32b (VGG-16), "
                 "0.23%/4.79b (ResNet-50); ANT 0.68%/6b, 0.89%/6b.\n";
    return 0;
}
