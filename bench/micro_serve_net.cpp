/**
 * @file
 * The socket front-end under sustained mixed-model traffic — the
 * Release CI gate for the network serving layer.
 *
 * Section 1 (capacity): 256 concurrent TCP connections (16 client
 * threads x 16 connections each, closed loop) issue single-sample
 * requests for two models — one of whose names carries a quote, so the
 * exposition-escaping path is exercised by real traffic. Gates:
 *
 *  - every request is ANSWERED over the wire (zero accepted-then-
 *    dropped: ok + overloaded == issued, nothing expires, no transport
 *    error), and every Ok response is bit-identical to the per-sample
 *    forwardPerDot oracle;
 *  - client-observed p99 stays bounded (a loose absolute lid — the
 *    real assertion is that the tail exists at all under 256
 *    connections, not a sharp latency SLO on shared CI hardware).
 *
 * Section 2 (overload): a deliberately under-provisioned server (one
 * worker, small shard depth bound, 2 ms deadlines against a >= 5 ms
 * flush delay) takes a burst. Gate: the server sheds with Overloaded
 * answered in microseconds INSTEAD of deadline churn — overloads must
 * outnumber expiries, expiries stay a small fraction of traffic, and
 * again nothing goes unanswered.
 *
 * Section 3 (scrape): the stats frame returns Prometheus text that
 * parsePrometheusText round-trips, including the per-model series
 * whose label value contains the quoted model name.
 */
#include <chrono>
#include <iostream>
#include <thread>

#include "bench/bench_common.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "nn/layers.hpp"
#include "obs/exposition.hpp"
#include "serve/server.hpp"

namespace {

using namespace bbs;

constexpr std::int64_t kInputDim = 256;
constexpr std::int64_t kHidden = 128;
constexpr std::int64_t kClasses = 32;
constexpr std::size_t kPoolSize = 32;

// The quote in this name is load-bearing: it flows through submit()'s
// per-model label and must survive exposition + reparse (section 3).
const char *const kModelA = "clf-a";
const char *const kModelB = "clf\"b";

Int8Network
makeEngine(std::uint64_t seed)
{
    Rng rng(seed);
    Network net;
    net.add(std::make_unique<Dense>(kInputDim, kHidden, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<Dense>(kHidden, kClasses, rng));
    return Int8Network::fromNetwork(net, 32, 4,
                                    PruneStrategy::ZeroPointShifting);
}

std::vector<std::vector<float>>
makePool(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> pool(kPoolSize);
    for (auto &sample : pool) {
        sample.resize(static_cast<std::size_t>(kInputDim));
        for (float &v : sample)
            v = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    }
    return pool;
}

std::vector<std::vector<float>>
oracleOf(const Int8Network &engine,
         const std::vector<std::vector<float>> &pool)
{
    std::vector<std::vector<float>> oracle(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        Batch x(Shape{1, kInputDim});
        for (std::int64_t c = 0; c < kInputDim; ++c)
            x.at(0, c) = pool[i][static_cast<std::size_t>(c)];
        Batch y = engine.forwardPerDot(x);
        oracle[i].resize(static_cast<std::size_t>(kClasses));
        for (std::int64_t c = 0; c < kClasses; ++c)
            oracle[i][static_cast<std::size_t>(c)] = y.at(0, c);
    }
    return oracle;
}

struct TrafficResult
{
    std::int64_t issued = 0;
    std::int64_t ok = 0;
    std::int64_t overloaded = 0;
    std::int64_t expired = 0;
    std::int64_t otherStatus = 0;
    std::int64_t transportErrors = 0;
    std::int64_t mismatches = 0;
    std::vector<double> latenciesUs;
};

/**
 * Closed-loop traffic: @p threads client threads, each owning
 * @p connsPerThread connections, one request in flight per connection,
 * @p perConn requests per connection. Models alternate per connection.
 */
TrafficResult
driveTraffic(std::uint16_t port, int threads, int connsPerThread,
             int perConn, std::int64_t deadlineUs,
             const std::vector<std::vector<float>> &pool,
             const std::vector<std::vector<float>> &oracleA,
             const std::vector<std::vector<float>> &oracleB)
{
    std::vector<TrafficResult> perThread(
        static_cast<std::size_t>(threads));
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            TrafficResult &res =
                perThread[static_cast<std::size_t>(t)];
            std::vector<net::NetClient> conns(
                static_cast<std::size_t>(connsPerThread));
            for (auto &c : conns)
                if (!c.connect("127.0.0.1", port, /*recvTimeoutMs=*/30000))
                    BBS_PANIC("client connect failed");
            for (int i = 0; i < perConn; ++i) {
                // Send one request on every connection, then collect
                // every answer: connsPerThread requests stay in flight
                // per thread.
                std::vector<std::chrono::steady_clock::time_point>
                    sentAt(conns.size());
                for (std::size_t k = 0; k < conns.size(); ++k) {
                    bool modelB = (static_cast<int>(k) + t) % 2 == 1;
                    std::size_t idx = static_cast<std::size_t>(
                        (t * 131 + static_cast<int>(k) * 17 + i) %
                        static_cast<int>(kPoolSize));
                    net::RequestFrame r;
                    r.tag = (static_cast<std::uint64_t>(modelB) << 32) |
                            idx;
                    r.deadlineUs = deadlineUs;
                    r.model = modelB ? kModelB : kModelA;
                    r.input = pool[idx];
                    sentAt[k] = std::chrono::steady_clock::now();
                    if (!conns[k].sendRequest(r)) {
                        ++res.transportErrors;
                        continue;
                    }
                    ++res.issued;
                }
                for (std::size_t k = 0; k < conns.size(); ++k) {
                    net::ResponseFrame resp;
                    if (!conns[k].recvResponse(resp)) {
                        ++res.transportErrors;
                        continue;
                    }
                    res.latenciesUs.push_back(microsBetween(
                        sentAt[k], std::chrono::steady_clock::now()));
                    auto status =
                        static_cast<ServeStatus>(resp.status);
                    if (status == ServeStatus::Ok) {
                        ++res.ok;
                        bool modelB = (resp.tag >> 32) != 0;
                        std::size_t idx = static_cast<std::size_t>(
                            resp.tag & 0xffffffffu);
                        const auto &oracle =
                            modelB ? oracleB : oracleA;
                        if (resp.logits != oracle[idx])
                            ++res.mismatches;
                    } else if (status == ServeStatus::Overloaded) {
                        ++res.overloaded;
                    } else if (status == ServeStatus::DeadlineExpired) {
                        ++res.expired;
                    } else {
                        ++res.otherStatus;
                    }
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();

    TrafficResult total;
    for (TrafficResult &r : perThread) {
        total.issued += r.issued;
        total.ok += r.ok;
        total.overloaded += r.overloaded;
        total.expired += r.expired;
        total.otherStatus += r.otherStatus;
        total.transportErrors += r.transportErrors;
        total.mismatches += r.mismatches;
        total.latenciesUs.insert(total.latenciesUs.end(),
                                 r.latenciesUs.begin(),
                                 r.latenciesUs.end());
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::jsonInit("micro_serve_net", argc, argv);
    bench::printHeader(
        "micro_serve_net",
        "the socket front-end answers every request under 256 "
        "concurrent connections of mixed-model traffic (bit-identical, "
        "bounded p99), sheds overload with Overloaded instead of "
        "deadline churn, and serves a parseable Prometheus scrape over "
        "the same listener");

    auto registry = std::make_shared<ModelRegistry>();
    registry->add(kModelA, makeEngine(0xaaaa));
    registry->add(kModelB, makeEngine(0xbbbb));
    auto pool = makePool(0xf00d);
    auto oracleA = oracleOf(*registry->find(kModelA), pool);
    auto oracleB = oracleOf(*registry->find(kModelB), pool);

    bool gatePassed = true;
    Table table({"section", "issued", "ok", "overloaded", "expired",
                 "p50", "p99", "verdict"});

    // ------------------------------------------------ section 1: capacity
    {
        ServerConfig cfg;
        cfg.maxBatch = 64;
        cfg.maxDelayUs = 1000;
        cfg.workers = 1; // raised to one per shard
        cfg.shards = 2;
        cfg.maxShardDepth = 1024; // far above the closed-loop ceiling
        InferenceServer server(registry, cfg);
        net::NetServer netServer(server, net::NetServerConfig{});
        netServer.start();

        constexpr int kThreads = 16, kConns = 16, kPerConn = 24;
        TrafficResult res = driveTraffic(
            netServer.port(), kThreads, kConns, kPerConn,
            /*deadlineUs=*/0, pool, oracleA, oracleB);

        double p50 = percentile(res.latenciesUs, 50.0);
        double p99 = percentile(res.latenciesUs, 99.0);
        // Zero accepted-then-dropped: every issued request came back,
        // as Ok (no deadline was set, so Overloaded would itself be a
        // config failure here given the depth headroom).
        bool ok = res.transportErrors == 0 && res.mismatches == 0 &&
                  res.otherStatus == 0 && res.expired == 0 &&
                  res.ok + res.overloaded == res.issued &&
                  res.issued ==
                      static_cast<std::int64_t>(kThreads) * kConns *
                          kPerConn &&
                  p99 < 5e6;
        StatsSnapshot s = server.stats();
        if (s.expired != 0 ||
            s.completed != static_cast<std::uint64_t>(res.ok))
            ok = false;
        gatePassed = gatePassed && ok;
        table.addRow({"256-conn mixed", format("%lld", res.issued),
                      format("%lld", res.ok),
                      format("%lld", res.overloaded),
                      format("%lld", res.expired),
                      format("%.2f ms", p50 / 1e3),
                      format("%.2f ms", p99 / 1e3),
                      ok ? "pass" : "FAIL"});
        bench::jsonAdd("net-serve", "capacity",
                       {{"issued", static_cast<double>(res.issued)},
                        {"ok", static_cast<double>(res.ok)},
                        {"p50_us", p50},
                        {"p99_us", p99},
                        {"mismatches",
                         static_cast<double>(res.mismatches)}});
        netServer.stop();
        server.stop();
    }

    // ------------------------------------------------ section 2: overload
    {
        ServerConfig cfg;
        cfg.maxBatch = 16;
        cfg.maxDelayUs = 5000; // alone already dwarfs the 2 ms deadline
        cfg.workers = 1;
        cfg.shards = 1;
        cfg.maxShardDepth = 8; // small: bursts hit the bound fast
        InferenceServer server(registry, cfg);
        net::NetServer netServer(server, net::NetServerConfig{});
        netServer.start();

        constexpr int kThreads = 8, kConns = 8, kPerConn = 24;
        TrafficResult res = driveTraffic(
            netServer.port(), kThreads, kConns, kPerConn,
            /*deadlineUs=*/2000, pool, oracleA, oracleB);

        double p50 = res.latenciesUs.empty()
                         ? 0.0
                         : percentile(res.latenciesUs, 50.0);
        double p99 = res.latenciesUs.empty()
                         ? 0.0
                         : percentile(res.latenciesUs, 99.0);
        // The shed must do the rejecting: Overloaded answers dominate,
        // expiries stay a small fraction of traffic (a few slip in
        // before the first completed batch arms the estimator), and
        // nothing is accepted then lost.
        bool ok = res.transportErrors == 0 && res.mismatches == 0 &&
                  res.otherStatus == 0 && res.overloaded > 0 &&
                  res.overloaded > res.expired &&
                  res.expired * 5 < res.issued &&
                  res.ok + res.overloaded + res.expired == res.issued;
        gatePassed = gatePassed && ok;
        table.addRow({"overload burst", format("%lld", res.issued),
                      format("%lld", res.ok),
                      format("%lld", res.overloaded),
                      format("%lld", res.expired),
                      format("%.2f ms", p50 / 1e3),
                      format("%.2f ms", p99 / 1e3),
                      ok ? "pass" : "FAIL"});
        bench::jsonAdd(
            "net-serve", "overload",
            {{"issued", static_cast<double>(res.issued)},
             {"overloaded", static_cast<double>(res.overloaded)},
             {"expired", static_cast<double>(res.expired)},
             {"ok", static_cast<double>(res.ok)}});

        // -------------------------------------------- section 3: scrape
        net::NetClient scraper;
        bool scrapeOk =
            scraper.connect("127.0.0.1", netServer.port(), 10000);
        obs::ParsedExposition parsed;
        if (scrapeOk) {
            auto text = scraper.stats();
            scrapeOk = text.has_value() &&
                       obs::parsePrometheusText(*text, parsed);
            if (scrapeOk) {
                std::string label = "model=\"" +
                                    obs::escapeLabelValue(kModelB) +
                                    "\"";
                const obs::ParsedSample *series = parsed.find(
                    "bbs_serve_model_requests_total", label);
                scrapeOk = series != nullptr && series->value > 0.0 &&
                           parsed.find(
                               "bbs_net_connections_accepted_total") !=
                               nullptr;
            }
        }
        gatePassed = gatePassed && scrapeOk;
        table.addRow({"stats scrape", "-", "-", "-", "-", "-", "-",
                      scrapeOk ? "pass" : "FAIL"});
        bench::jsonAdd("net-serve", "scrape",
                       {{"round_trip", scrapeOk ? 1.0 : 0.0},
                        {"samples",
                         static_cast<double>(parsed.samples.size())}});
        netServer.stop();
        server.stop();
    }

    table.print(std::cout);
    std::cout << (gatePassed
                      ? "\nnetwork serving gates met (answered "
                        "everything, shed with Overloaded, scrape "
                        "round-trips)\n"
                      : "\nnetwork serving gate FAILED\n");
    bench::jsonFlush();
    return gatePassed ? 0 : 1;
}
