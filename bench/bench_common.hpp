/**
 * @file
 * Shared helpers for the benchmark harness: model materialization with a
 * per-process cache, the standard simulation flow, stand-in network
 * training for accuracy experiments, and output formatting conventions.
 *
 * Every bench binary regenerates one table or figure of the paper and
 * prints (a) the paper's reference numbers where applicable and (b) the
 * values measured on this reproduction, so EXPERIMENTS.md can be filled by
 * running `for b in build/bench/*; do $b; done`.
 */
#ifndef BBS_BENCH_COMMON_HPP
#define BBS_BENCH_COMMON_HPP

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "accel/factory.hpp"
#include "common/table.hpp"
#include "models/model_zoo.hpp"
#include "models/workload.hpp"
#include "nn/compress_net.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "sim/prepared_model.hpp"

namespace bbs::bench {

/** Standard per-layer weight cap for simulation benches (keeps the whole
 *  suite laptop-scale; whole channels are kept so statistics are
 *  unbiased). */
inline constexpr std::int64_t kSimWeightCap = 2'000'000;

/** Banner printed at the top of every bench binary. */
void printHeader(const std::string &experiment, const std::string &claim);

/** Materialize a model (cached per process) under the standard cap. */
const MaterializedModel &cachedModel(const std::string &name,
                                     std::int64_t cap = kSimWeightCap);

/** Simulate one model on the full lineup; returns name -> result. */
std::map<std::string, ModelSim>
simulateLineup(const std::string &modelName, const SimConfig &cfg);

/**
 * A trained stand-in network for accuracy experiments (see DESIGN.md §1:
 * real trained weights substitute the paper's ImageNet/GLUE evaluations).
 */
struct StandIn
{
    Network net;
    Dataset data;
    double baselineAccuracy = 0.0; ///< FP32 test accuracy
    double int8Accuracy = 0.0;     ///< after per-channel INT8 PTQ
};

/**
 * Train the stand-in associated with a paper benchmark. CNN-family models
 * get a conv stand-in on the shape dataset; transformer-family models get
 * a GELU MLP on the cluster dataset. Cached per process.
 */
StandIn &standInFor(const std::string &modelName);

/** Clone the stand-in's trained weights into a fresh network. */
Network cloneNetwork(const std::string &modelName);

/** Accuracy after applying @p spec to a fresh clone. */
double accuracyAfter(const std::string &modelName,
                     const CompressionSpec &spec,
                     CompressionReport *report = nullptr);

/** Format helper: "1.66x". */
std::string times(double v, int digits = 2);

/** Format helper: percentage with sign, e.g. "-0.45". */
std::string deltaPct(double v, int digits = 2);

// -------------------------------------------------------- JSON reporting
//
// Every bench accepts `--json <path>`: alongside the human tables it then
// writes machine-readable records, so CI can archive BENCH_*.json
// artifacts and the perf trajectory is queryable instead of living in
// log scrollback. With no --json flag the calls below are no-ops.
//
//   {"bench": "micro_gemm", "simd": "avx512", "records": [
//     {"kernel": "gemmCompressed", "config": "batch=64",
//      "mmacs": 2081.7, "speedup": 5.4}, ...]}

/**
 * Parse --json from @p argv (call once at the top of main). @p bench
 * names the experiment in the emitted document.
 */
void jsonInit(const std::string &bench, int argc, char **argv);

/** Append one record: a kernel/config label plus numeric metrics. */
void jsonAdd(
    const std::string &kernel, const std::string &config,
    std::initializer_list<std::pair<const char *, double>> metrics);

/** Write the document to the --json path (no-op when absent). */
void jsonFlush();

/**
 * Kernel-speedup gate target for the active SIMD dispatch level (see
 * README "Performance"): 3x where VPOPCNTDQ dispatches (avx512), 1.5x
 * on AVX2-max hosts — without a vector popcount instruction, a scalar
 * POPCNT loop already retires ~1 word/cycle, which physically caps
 * AND+popcount streams near 2.2x there, and the gate leaves headroom
 * for noisy shared runners. 0 when the dispatch is scalar: nothing to
 * gate against.
 */
double simdGateTarget();

/**
 * Shared scaffold for the micro benches' dispatch-vs-scalar sections
 * (micro_bitplane scans, micro_gemm streams): each row verifies the
 * dispatched kernel bit-identical to the scalar table on the same data,
 * times both, and lands in one table + the JSON report. `gated` rows —
 * the stream kernels whose throughput the SIMD layer targets — enter a
 * geomean gate at simdGateTarget(); ungated window/group rows (one
 * 8-word window per logical op, horizontal-reduce-bound) are instead
 * held to a no-pessimization floor of 0.75x. finish() prints the
 * verdict and returns whether every gate passed (vacuously true under
 * scalar dispatch).
 */
class SimdDispatchBench
{
  public:
    /** @p reps kernel calls per timing sample (best of 5 samples). */
    explicit SimdDispatchBench(int reps = 200) : reps_(reps) {}

    /**
     * Add one kernel row. The callables run the kernel once through the
     * scalar / active table respectively and return a checksum for the
     * bit-identical pin; @p wordsPerCall scales the reported Mw/s.
     * Panics when the two checksums differ.
     */
    void row(const std::string &name, bool gated,
             const std::function<std::int64_t()> &scalarFn,
             const std::function<std::int64_t()> &activeFn,
             double wordsPerCall);

    /** Print table + verdict under @p caption; false = a gate failed. */
    bool finish(std::ostream &os, const std::string &caption);

  private:
    struct Row
    {
        std::string name;
        bool gated = false;
        double scalarMws = 0.0;
        double dispatchedMws = 0.0;
        double speedup = 0.0;
    };
    int reps_;
    std::vector<Row> rows_;
};

} // namespace bbs::bench

#endif // BBS_BENCH_COMMON_HPP
