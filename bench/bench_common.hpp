/**
 * @file
 * Shared helpers for the benchmark harness: model materialization with a
 * per-process cache, the standard simulation flow, stand-in network
 * training for accuracy experiments, and output formatting conventions.
 *
 * Every bench binary regenerates one table or figure of the paper and
 * prints (a) the paper's reference numbers where applicable and (b) the
 * values measured on this reproduction, so EXPERIMENTS.md can be filled by
 * running `for b in build/bench/*; do $b; done`.
 */
#ifndef BBS_BENCH_COMMON_HPP
#define BBS_BENCH_COMMON_HPP

#include <map>
#include <string>
#include <vector>

#include "accel/factory.hpp"
#include "common/table.hpp"
#include "models/model_zoo.hpp"
#include "models/workload.hpp"
#include "nn/compress_net.hpp"
#include "nn/dataset.hpp"
#include "nn/evaluate.hpp"
#include "sim/prepared_model.hpp"

namespace bbs::bench {

/** Standard per-layer weight cap for simulation benches (keeps the whole
 *  suite laptop-scale; whole channels are kept so statistics are
 *  unbiased). */
inline constexpr std::int64_t kSimWeightCap = 2'000'000;

/** Banner printed at the top of every bench binary. */
void printHeader(const std::string &experiment, const std::string &claim);

/** Materialize a model (cached per process) under the standard cap. */
const MaterializedModel &cachedModel(const std::string &name,
                                     std::int64_t cap = kSimWeightCap);

/** Simulate one model on the full lineup; returns name -> result. */
std::map<std::string, ModelSim>
simulateLineup(const std::string &modelName, const SimConfig &cfg);

/**
 * A trained stand-in network for accuracy experiments (see DESIGN.md §1:
 * real trained weights substitute the paper's ImageNet/GLUE evaluations).
 */
struct StandIn
{
    Network net;
    Dataset data;
    double baselineAccuracy = 0.0; ///< FP32 test accuracy
    double int8Accuracy = 0.0;     ///< after per-channel INT8 PTQ
};

/**
 * Train the stand-in associated with a paper benchmark. CNN-family models
 * get a conv stand-in on the shape dataset; transformer-family models get
 * a GELU MLP on the cluster dataset. Cached per process.
 */
StandIn &standInFor(const std::string &modelName);

/** Clone the stand-in's trained weights into a fresh network. */
Network cloneNetwork(const std::string &modelName);

/** Accuracy after applying @p spec to a fresh clone. */
double accuracyAfter(const std::string &modelName,
                     const CompressionSpec &spec,
                     CompressionReport *report = nullptr);

/** Format helper: "1.66x". */
std::string times(double v, int digits = 2);

/** Format helper: percentage with sign, e.g. "-0.45". */
std::string deltaPct(double v, int digits = 2);

} // namespace bbs::bench

#endif // BBS_BENCH_COMMON_HPP
