/**
 * @file
 * Scalar-vs-packed microbenchmark of the bit-plane kernel substrate.
 *
 * Every kernel that was refactored onto packed planes is timed in both
 * forms on the same data, the results are checked for exact equality, and
 * a speedup table is printed. The packed path is the one the library
 * actually runs; the scalar path is the preserved per-element reference
 * (bbsSparsityScalar / dotBitSerialBbsScalar / dotCompressedScalar).
 *
 * A second table compares the SIMD dispatch levels on the word-scan
 * kernels (src/simd/) the packed paths bottom out in: every kernel the
 * active level actually vectorizes is timed against the BBS_SIMD=scalar
 * table on identical L1-resident data, checked bit-identical, and gated
 * at bench_common's per-level geomean target (3x under AVX-512, 1.5x
 * under AVX2, skipped when the dispatch is scalar).
 */
#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>

#include "bench/bench_common.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/bbs.hpp"
#include "core/bbs_dot.hpp"
#include "core/bitplane.hpp"
#include "core/compressed_tensor.hpp"
#include "simd/simd.hpp"

namespace {

using namespace bbs;

double
secondsOf(const std::function<void()> &fn, int reps)
{
    // One warm-up, then the best of `reps` (least-noise estimator).
    fn();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

Int8Tensor
randomCodes(std::int64_t channels, std::int64_t cs, std::uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t(Shape{channels, cs});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::jsonInit("micro_bitplane", argc, argv);
    bench::printHeader(
        "micro_bitplane",
        "packed bit-plane kernels are >= 5x faster than the scalar "
        "per-element reference paths they replaced");

    const std::int64_t channels = 256;
    const std::int64_t cs = 1024;
    Int8Tensor codes = randomCodes(channels, cs, 0xbeef);
    const double weights = static_cast<double>(codes.numel());

    Table table({"kernel", "scalar", "packed", "speedup"});
    double logSum = 0.0;
    int kernels = 0;

    auto addRow = [&](const std::string &name, double scalarS,
                      double packedS) {
        double speedup = scalarS / packedS;
        logSum += std::log(speedup);
        ++kernels;
        table.addRow({name,
                      format("%.1f Mw/s", weights / scalarS / 1e6),
                      format("%.1f Mw/s", weights / packedS / 1e6),
                      bench::times(speedup)});
        bench::jsonAdd(name, "packed-vs-scalar-element",
                       {{"scalar_mws", weights / scalarS / 1e6},
                        {"packed_mws", weights / packedS / 1e6},
                        {"speedup", speedup}});
    };

    // ---- bbsSparsity: whole-tensor BBS sparsity measurement (Fig 3).
    {
        volatile double sink = 0.0;
        double scalarS = secondsOf(
            [&] { sink = bbsSparsityScalar(codes, 16); }, 5);
        double refVal = sink;
        double packedS =
            secondsOf([&] { sink = bbsSparsity(codes, 16); }, 5);
        if (sink != refVal)
            BBS_PANIC("bbsSparsity packed/scalar mismatch");
        addRow("bbsSparsity", scalarS, packedS);
    }

    // ---- dotBitSerialBbs: Eq. 2/3 dot product over 32-weight groups.
    {
        Int8Tensor acts = randomCodes(channels, cs, 0xfeed);
        const std::int64_t gs = 32;
        auto run = [&](bool packed) {
            std::int64_t acc = 0;
            for (std::int64_t g = 0; g < codes.numGroups(gs); ++g) {
                auto w = codes.group(g, gs);
                auto a = acts.group(g, gs);
                acc += packed ? dotBitSerialBbs(w, a).value
                              : dotBitSerialBbsScalar(w, a).value;
            }
            return acc;
        };
        volatile std::int64_t sink = 0;
        double scalarS = secondsOf([&] { sink = run(false); }, 5);
        std::int64_t refVal = sink;
        double packedS = secondsOf([&] { sink = run(true); }, 5);
        if (sink != refVal)
            BBS_PANIC("dotBitSerialBbs packed/scalar mismatch");
        addRow("dotBitSerialBbs", scalarS, packedS);
    }

    // ---- dotCompressed: compressed-domain dot (PE Fig 7).
    {
        Int8Tensor acts = randomCodes(channels, cs, 0xcafe);
        CompressedTensor ct = CompressedTensor::compress(
            codes, 32, 2, PruneStrategy::RoundedAveraging);
        auto run = [&](bool packed) {
            std::int64_t acc = 0;
            for (std::int64_t g = 0;
                 g < static_cast<std::int64_t>(ct.groups().size()); ++g) {
                const CompressedGroup &cg = ct.group(g);
                auto a = acts.group(g, 32);
                acc += packed ? dotCompressed(cg, a).value
                              : dotCompressedScalar(cg, a).value;
            }
            return acc;
        };
        volatile std::int64_t sink = 0;
        double scalarS = secondsOf([&] { sink = run(false); }, 5);
        std::int64_t refVal = sink;
        double packedS = secondsOf([&] { sink = run(true); }, 5);
        if (sink != refVal)
            BBS_PANIC("dotCompressed packed/scalar mismatch");
        addRow("dotCompressed", scalarS, packedS);
    }

    // ---- effectual-ops scan: the per-slice work every accelerator
    //      buildWork performs (column popcounts of 16-weight slices).
    {
        auto runScalar = [&] {
            std::int64_t ops = 0;
            for (std::int64_t g = 0; g < codes.numGroups(16); ++g) {
                auto grp = codes.group(g, 16);
                int n = static_cast<int>(grp.size());
                for (int b = 0; b < kWeightBits; ++b)
                    ops += bbsEffectualBits(extractColumn(grp, b), n);
            }
            return ops;
        };
        // repack() reuses one plane allocation across reps — the mmap
        // churn of a fresh megabyte-scale tensor per call would otherwise
        // swamp the kernel being measured.
        auto runPacked = [&, planes = BitPlaneTensor()]() mutable {
            planes.repack(codes.data(), 1, 16);
            return packedEffectualOpsTotal(planes);
        };
        volatile std::int64_t sink = 0;
        double scalarS = secondsOf([&] { sink = runScalar(); }, 5);
        std::int64_t refVal = sink;
        double packedS = secondsOf([&] { sink = runPacked(); }, 5);
        if (sink != refVal)
            BBS_PANIC("effectual-ops packed/scalar mismatch");
        addRow("effectualOps scan", scalarS, packedS);
    }

    table.print(std::cout);
    double geomean = std::exp(logSum / kernels);
    std::cout << "\ngeomean kernel speedup: " << bench::times(geomean)
              << (geomean >= 5.0 ? "  (target >= 5x met)"
                                 : "  (below 5x target!)")
              << "\n";
    bool gatePassed = geomean >= 5.0;

    // ---- SIMD dispatch: the word-scan kernels at the active level vs
    //      the scalar table, on identical L1-resident data.
    {
        const SimdKernels &active = simdKernels();
        const SimdKernels &scalar = simdKernelsFor(SimdLevel::Scalar);
        const std::int64_t nw = 2048;   // 16 KiB of plane words
        const std::int64_t nb = 16384;  // byte-kernel span
        Rng rng(0x51d);
        std::vector<std::uint64_t> wordBuf(
            static_cast<std::size_t>(nw));
        for (auto &w : wordBuf)
            w = rng.next();
        std::vector<std::int8_t> byteBuf(static_cast<std::size_t>(nb));
        for (auto &b : byteBuf)
            b = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        const std::uint64_t *words = wordBuf.data();
        const std::int8_t *bytes = byteBuf.data();

        bench::SimdDispatchBench simdBench;
        if (active.popcountSum != scalar.popcountSum)
            simdBench.row(
                "popcountSum", true,
                [&] { return scalar.popcountSum(words, nw); },
                [&] { return active.popcountSum(words, nw); },
                static_cast<double>(nw));
        if (active.popcountSumBytes != scalar.popcountSumBytes)
            simdBench.row(
                "popcountSumBytes", true,
                [&] { return scalar.popcountSumBytes(bytes, nb); },
                [&] { return active.popcountSumBytes(bytes, nb); },
                static_cast<double>(nb) / 8.0);
        if (active.byteSum != scalar.byteSum)
            simdBench.row(
                "byteSum", true,
                [&] { return scalar.byteSum(bytes, nb); },
                [&] { return active.byteSum(bytes, nb); },
                static_cast<double>(nb) / 8.0);
        if (active.effectualOpsSum != scalar.effectualOpsSum)
            simdBench.row(
                "effectualOpsSum", true,
                [&] { return scalar.effectualOpsSum(words, nw, 64); },
                [&] { return active.effectualOpsSum(words, nw, 64); },
                static_cast<double>(nw));
        if (active.sparseBitsSum != scalar.sparseBitsSum)
            simdBench.row(
                "sparseBitsSum", true,
                [&] { return scalar.sparseBitsSum(words, nw, 64); },
                [&] { return active.sparseBitsSum(words, nw, 64); },
                static_cast<double>(nw));
        gatePassed =
            simdBench.finish(
                std::cout,
                format("SIMD dispatch (%s vs scalar, %lld-word / "
                       "%lld-byte scans)",
                       simdLevelName(active.level),
                       static_cast<long long>(nw),
                       static_cast<long long>(nb))) &&
            gatePassed;
    }

    bench::jsonFlush();
    return gatePassed ? 0 : 1;
}
